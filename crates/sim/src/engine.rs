//! The discrete-event simulation engine.
//!
//! Processes never share memory: the engine owns every client and object and
//! delivers messages between them according to a [`Controller`]'s verdicts.
//! Execution is fully deterministic: events are ordered by
//! `(time, sequence-number)` and all randomness lives in seeded controllers.

use crate::control::{Controller, FixedDelay, Verdict};
use crate::driver::{Dispatch, OpDriver, StalePolicy};
use crate::trace::Trace;
use rastor_common::{ClientId, ObjectId, OpKind, OpStat};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::fmt;

/// Unique identifier of a message instance in a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// Direction of a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgDir {
    /// Client → object request.
    Request,
    /// Object → client reply.
    Reply,
}

/// A message in flight, visible to [`Controller`] implementations so that
/// scripted adversaries can pattern-match on semantic coordinates
/// (client, object, operation sequence number, round).
#[derive(Clone, Debug)]
pub struct Envelope<P> {
    /// Unique message id.
    pub id: MsgId,
    /// Direction (request or reply).
    pub dir: MsgDir,
    /// The client endpoint (sender of a request / recipient of a reply).
    pub client: ClientId,
    /// The object endpoint.
    pub object: ObjectId,
    /// Per-client operation sequence number (0-based).
    pub op_seq: u64,
    /// Round number within the operation (1-based).
    pub round: u32,
    /// Protocol payload.
    pub payload: P,
}

/// What a [`RoundClient`] does after processing a reply.
#[derive(Debug)]
pub enum ClientAction<Q, Out> {
    /// Keep waiting for more replies in the current (or late prior) rounds.
    Wait,
    /// Terminate the current round and broadcast the next one.
    NextRound(Q),
    /// The operation completes with the given output.
    Complete(Out),
}

/// A client-side operation automaton, structured in communication rounds
/// (paper, Definition 1).
///
/// The engine calls [`RoundClient::start`] once to obtain the round-1
/// broadcast, then feeds every reply (tagged with the round it answers) to
/// [`RoundClient::on_reply`]. Late replies from earlier rounds are delivered
/// too — the paper's round model explicitly lets a client use them.
pub trait RoundClient<Q, R> {
    /// The operation's result type.
    type Out;

    /// Produce the round-1 request broadcast to all objects.
    fn start(&mut self) -> Q;

    /// Process one reply; decide whether to wait, start the next round, or
    /// complete.
    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &R) -> ClientAction<Q, Self::Out>;
}

/// A storage-object automaton.
///
/// Correct objects are deterministic and reply to every request before
/// processing any other message (the engine guarantees atomic handling).
/// A *Byzantine* object is any other implementation: it may lie, equivocate
/// per client, or return `None` to stay silent. Crash faults are the special
/// case of eventually returning `None` forever.
pub trait ObjectBehavior<Q, R> {
    /// Handle one request, optionally producing a reply.
    fn on_request(&mut self, from: ClientId, req: &Q) -> Option<R>;
}

/// A completed operation, as reported by [`Sim::run_to_quiescence`] et al.
#[derive(Clone, Debug)]
pub struct Completion<Out> {
    /// The client whose operation completed.
    pub client: ClientId,
    /// Per-client operation sequence number.
    pub op_seq: u64,
    /// The operation's output.
    pub output: Out,
    /// Rounds/latency statistics.
    pub stat: OpStat,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Hard cap on processed events, guarding against non-terminating
    /// protocols (a wait-freedom violation surfaces as hitting this cap).
    pub max_events: u64,
    /// Whether to record per-client observation transcripts (needed by the
    /// indistinguishability checks; costs memory on long soak runs).
    pub record_observations: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            max_events: 10_000_000,
            record_observations: true,
        }
    }
}

enum Event<Q, R> {
    DeliverRequest(Envelope<Q>),
    DeliverReply(Envelope<R>),
    Invoke(ClientId),
    CrashClient(ClientId),
}

/// An operation queued behind a client's pending one: invocation time, kind,
/// and the protocol automaton to run.
type QueuedOp<Q, R, Out> = (u64, OpKind, Box<dyn RoundClient<Q, R, Out = Out>>);

/// Per-client state: the shared [`OpDriver`] does the round bookkeeping
/// (one implementation for the simulator and the thread runtime); the slot
/// adds the paper's FIFO invocation queue. The driver runs
/// [`StalePolicy::DeliverLate`] — the paper's round model explicitly lets
/// a client use replies from terminated rounds, and the lower-bound
/// replays rely on it (the deploy path hardens this to `DropLate`).
struct ClientSlot<Q, R, Out> {
    driver: OpDriver<Q, R, Out>,
    queue: Vec<QueuedOp<Q, R, Out>>,
    crashed: bool,
}

impl<Q, R, Out> Default for ClientSlot<Q, R, Out> {
    fn default() -> Self {
        ClientSlot {
            driver: OpDriver::new(StalePolicy::DeliverLate),
            queue: Vec::new(),
            crashed: false,
        }
    }
}

/// The simulator: owns objects, clients, the event queue and the trace.
pub struct Sim<Q, R, Out> {
    cfg: SimConfig,
    time: u64,
    seq: u64,
    next_msg: u64,
    events: BinaryHeap<Reverse<(u64, u64, u64)>>, // (time, seq, key into store)
    store: HashMap<u64, Event<Q, R>>,
    objects: Vec<Box<dyn ObjectBehavior<Q, R>>>,
    clients: HashMap<ClientId, ClientSlot<Q, R, Out>>,
    controller: Box<dyn Controller<Q, R>>,
    held: HashMap<MsgId, Event<Q, R>>,
    fifo_floor: HashMap<(ClientId, ObjectId, MsgDir), u64>,
    trace: Trace,
    processed: u64,
}

impl<Q, R, Out> Sim<Q, R, Out>
where
    Q: Clone + fmt::Debug,
    R: Clone + fmt::Debug,
    Out: fmt::Debug,
{
    /// Create an empty simulator with a unit-delay [`FixedDelay`] controller.
    pub fn new(cfg: SimConfig) -> Sim<Q, R, Out> {
        Sim::with_controller(cfg, Box::new(FixedDelay::new(1)))
    }

    /// Create a simulator driven by the given controller.
    pub fn with_controller(
        cfg: SimConfig,
        controller: Box<dyn Controller<Q, R>>,
    ) -> Sim<Q, R, Out> {
        Sim {
            cfg,
            time: 0,
            seq: 0,
            next_msg: 0,
            events: BinaryHeap::new(),
            store: HashMap::new(),
            objects: Vec::new(),
            clients: HashMap::new(),
            controller,
            held: HashMap::new(),
            fifo_floor: HashMap::new(),
            trace: Trace::default(),
            processed: 0,
        }
    }

    /// Register a storage object; returns its id. Objects are added in
    /// index order `s0, s1, …`.
    pub fn add_object(&mut self, behavior: Box<dyn ObjectBehavior<Q, R>>) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(behavior);
        id
    }

    /// Register a whole cast of objects at once, in slot order — the
    /// batch form of [`Sim::add_object`] used by schedule exploration,
    /// where a `Cast` materializes all `3t + 1` behaviors (honest and
    /// Byzantine) as one vector. Returns the assigned ids, `s0, s1, …`.
    pub fn add_objects(&mut self, behaviors: Vec<Box<dyn ObjectBehavior<Q, R>>>) -> Vec<ObjectId> {
        behaviors.into_iter().map(|b| self.add_object(b)).collect()
    }

    /// Replace an object's behavior mid-run (used by fault-injection tests
    /// to turn a correct object Byzantine at a chosen instant).
    pub fn replace_object(&mut self, id: ObjectId, behavior: Box<dyn ObjectBehavior<Q, R>>) {
        self.objects[id.index()] = behavior;
    }

    /// Number of registered objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Access the recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consume the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Mutable access to the controller (for scripted runs that release held
    /// messages between phases).
    pub fn controller_mut(&mut self) -> &mut dyn Controller<Q, R> {
        self.controller.as_mut()
    }

    /// Schedule an operation invocation at an absolute time. Operations by
    /// the same client queue FIFO: a client "does not invoke the next
    /// operation until it receives the response for the current operation"
    /// (paper, Section 2.2) — queued invocations start only after the
    /// previous one completes (and at or after their scheduled time).
    pub fn invoke_at(
        &mut self,
        at: u64,
        client: ClientId,
        kind: OpKind,
        automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
    ) {
        let slot = self.clients.entry(client).or_default();
        slot.queue.push((at, kind, automaton));
        // Keep the queue sorted by requested time (stable for equal times).
        slot.queue.sort_by_key(|(t, _, _)| *t);
        self.push_event(at, Event::Invoke(client));
    }

    /// Schedule a client crash at an absolute time: the client stops taking
    /// steps; its pending operation never completes.
    pub fn crash_client_at(&mut self, at: u64, client: ClientId) {
        self.push_event(at, Event::CrashClient(client));
    }

    /// Release a held message for delivery at the given absolute time
    /// (must be ≥ the current time). Used by scripted adversaries.
    pub fn release_held(&mut self, id: MsgId, at: u64) {
        if let Some(ev) = self.held.remove(&id) {
            self.push_event(at.max(self.time), ev);
        }
    }

    /// Ids of messages currently held "in transit".
    pub fn held_messages(&self) -> Vec<MsgId> {
        let mut v: Vec<MsgId> = self.held.keys().copied().collect();
        v.sort();
        v
    }

    fn push_event(&mut self, at: u64, ev: Event<Q, R>) {
        let key = self.seq;
        self.seq += 1;
        self.store.insert(key, ev);
        self.events.push(Reverse((at, key, key)));
    }

    fn fresh_msg_id(&mut self) -> MsgId {
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        id
    }

    /// FIFO channels: clamp a delivery time to be no earlier than the last
    /// delivery already scheduled on the same directed link.
    fn fifo_clamp(&mut self, client: ClientId, object: ObjectId, dir: MsgDir, at: u64) -> u64 {
        let floor = self.fifo_floor.entry((client, object, dir)).or_insert(0);
        let when = at.max(*floor);
        *floor = when;
        when
    }

    fn route_request(&mut self, env: Envelope<Q>) {
        match self.controller.on_request(&env, self.time) {
            Verdict::DeliverAt(at) => {
                let at =
                    self.fifo_clamp(env.client, env.object, MsgDir::Request, at.max(self.time));
                self.push_event(at, Event::DeliverRequest(env));
            }
            Verdict::Hold => {
                self.held.insert(env.id, Event::DeliverRequest(env));
            }
        }
    }

    fn route_reply(&mut self, env: Envelope<R>) {
        match self.controller.on_reply(&env, self.time) {
            Verdict::DeliverAt(at) => {
                let at = self.fifo_clamp(env.client, env.object, MsgDir::Reply, at.max(self.time));
                self.push_event(at, Event::DeliverReply(env));
            }
            Verdict::Hold => {
                self.held.insert(env.id, Event::DeliverReply(env));
            }
        }
    }

    fn broadcast(&mut self, client: ClientId, op_seq: u64, round: u32, payload: Q) {
        self.trace.note_round(client, op_seq, round, self.time);
        for idx in 0..self.objects.len() {
            let env = Envelope {
                id: self.fresh_msg_id(),
                dir: MsgDir::Request,
                client,
                object: ObjectId(idx as u32),
                op_seq,
                round,
                payload: payload.clone(),
            };
            self.route_request(env);
        }
    }

    fn maybe_start_queued(&mut self, client: ClientId) {
        let now = self.time;
        let Some(slot) = self.clients.get_mut(&client) else {
            return;
        };
        if slot.crashed || slot.driver.in_flight() > 0 || slot.queue.is_empty() {
            return;
        }
        if slot.queue[0].0 > now {
            return; // its Invoke event will fire later
        }
        let (_, kind, automaton) = slot.queue.remove(0);
        // The driver assigns nonces 0, 1, 2, … per client — exactly the
        // per-client operation sequence numbers the envelopes carry.
        let first = slot.driver.submit(kind, automaton, now, None);
        self.trace.note_invoke(client, first.nonce, kind, now);
        self.broadcast(client, first.nonce, 1, first.payload);
    }

    fn handle_event(&mut self, ev: Event<Q, R>) -> Option<Completion<Out>> {
        match ev {
            Event::Invoke(client) => {
                self.maybe_start_queued(client);
                None
            }
            Event::CrashClient(client) => {
                let slot = self.clients.entry(client).or_default();
                slot.crashed = true;
                slot.driver.abort_all();
                slot.queue.clear();
                self.trace.note_crash(client, self.time);
                None
            }
            Event::DeliverRequest(env) => {
                let obj = &mut self.objects[env.object.index()];
                let reply = obj.on_request(env.client, &env.payload);
                if let Some(payload) = reply {
                    let renv = Envelope {
                        id: self.fresh_msg_id(),
                        dir: MsgDir::Reply,
                        client: env.client,
                        object: env.object,
                        op_seq: env.op_seq,
                        round: env.round,
                        payload,
                    };
                    self.route_reply(renv);
                }
                None
            }
            Event::DeliverReply(env) => self.deliver_reply(env),
        }
    }

    fn deliver_reply(&mut self, env: Envelope<R>) -> Option<Completion<Out>> {
        let now = self.time;
        let record = self.cfg.record_observations;
        let slot = self.clients.get_mut(&env.client)?;
        if slot.crashed {
            return None;
        }
        if !slot.driver.is_live(env.op_seq) {
            return None; // straggler from a completed (or never-run) op
        }
        if record {
            self.trace.note_observation(
                env.client,
                env.op_seq,
                env.round,
                env.object,
                format!("{:?}", env.payload),
                now,
            );
        }
        let dispatch =
            slot.driver
                .on_reply_at(env.op_seq, env.object, env.round, &env.payload, now);
        match dispatch {
            Dispatch::Unknown | Dispatch::StaleRound | Dispatch::Wait => None,
            Dispatch::NextRound(b) => {
                self.broadcast(env.client, b.nonce, b.round, b.payload);
                None
            }
            Dispatch::Complete(c) => {
                let stat = OpStat {
                    kind: c.kind,
                    rounds: c.rounds,
                    invoked_at: c.invoked_at,
                    completed_at: now,
                };
                self.trace
                    .note_complete(env.client, c.nonce, format!("{:?}", c.output), stat);
                let completion = Completion {
                    client: env.client,
                    op_seq: c.nonce,
                    output: c.output,
                    stat,
                };
                // A queued next operation may start immediately.
                self.maybe_start_queued(env.client);
                Some(completion)
            }
        }
    }

    /// Process events until the next operation completion; returns it, or
    /// `None` when the event queue drains (or the event cap is hit) first.
    pub fn run_until_completion(&mut self) -> Option<Completion<Out>> {
        while let Some(Reverse((at, _, key))) = self.events.pop() {
            self.processed += 1;
            if self.processed > self.cfg.max_events {
                return None;
            }
            self.time = self.time.max(at);
            let ev = self.store.remove(&key).expect("event stored");
            if let Some(done) = self.handle_event(ev) {
                return Some(done);
            }
        }
        None
    }

    /// Run until no events remain, collecting every completion.
    pub fn run_to_quiescence(&mut self) -> Vec<Completion<Out>> {
        let mut out = Vec::new();
        while let Some(c) = self.run_until_completion() {
            out.push(c);
        }
        out
    }

    /// Whether the event cap was hit (indicating a stuck / non-wait-free run).
    pub fn hit_event_cap(&self) -> bool {
        self.processed > self.cfg.max_events
    }

    /// Override the staleness policy of one client's op driver (defaults
    /// to [`StalePolicy::DeliverLate`]). Call before the client's first
    /// operation is invoked; scenario tests use it to run the hardened
    /// deploy-path [`StalePolicy::DropLate`] behaviour inside the sim.
    pub fn set_stale_policy(&mut self, client: ClientId, policy: StalePolicy) {
        self.clients
            .entry(client)
            .or_default()
            .driver
            .set_policy(policy);
    }

    /// Drive the run from an external [`Scheduler`].
    ///
    /// The engine first drains every deliverable event, then repeatedly
    /// presents the sorted list of held message ids to the scheduler; the
    /// chosen message is released one tick in the future and the engine
    /// drains again. The loop ends when the scheduler declines to pick or
    /// no messages remain held. Combined with a [`crate::ScriptedController`]
    /// whose rules *hold* traffic, this turns message-delivery order into a
    /// sequence of explicit choices — the seam the schedule explorer in
    /// `rastor_check` enumerates and perturbs.
    pub fn run_scheduled(&mut self, sched: &mut dyn Scheduler) -> Vec<Completion<Out>> {
        let mut out = self.run_to_quiescence();
        loop {
            let held = self.held_messages();
            if held.is_empty() {
                break;
            }
            let Some(i) = sched.pick(&held) else { break };
            let id = held[i.min(held.len() - 1)];
            let at = self.time + 1;
            self.release_held(id, at);
            out.extend(self.run_to_quiescence());
        }
        out
    }
}

/// A pluggable message-delivery order for [`Sim::run_scheduled`].
///
/// Each call sees the currently held messages (sorted by id, so indices
/// are stable for a given state) and returns the index to deliver next,
/// or `None` to stop and leave the rest undelivered. Implementations in
/// `rastor_check` include exhaustive enumerators (trying every index at
/// every depth) and seeded-random pickers whose choice sequence can be
/// replayed and perturbed.
pub trait Scheduler {
    /// Pick the index (into `held`) of the next message to deliver.
    fn pick(&mut self, held: &[MsgId]) -> Option<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ObjectBehavior<u32, u32> for Echo {
        fn on_request(&mut self, _from: ClientId, req: &u32) -> Option<u32> {
            Some(*req + 1)
        }
    }

    struct Silent;
    impl ObjectBehavior<u32, u32> for Silent {
        fn on_request(&mut self, _from: ClientId, _req: &u32) -> Option<u32> {
            None
        }
    }

    struct NRound {
        need: usize,
        got: usize,
        rounds_left: u32,
    }
    impl RoundClient<u32, u32> for NRound {
        type Out = u32;
        fn start(&mut self) -> u32 {
            0
        }
        fn on_reply(
            &mut self,
            _from: ObjectId,
            _round: u32,
            reply: &u32,
        ) -> ClientAction<u32, u32> {
            self.got += 1;
            if self.got < self.need {
                return ClientAction::Wait;
            }
            self.got = 0;
            if self.rounds_left > 1 {
                self.rounds_left -= 1;
                ClientAction::NextRound(*reply)
            } else {
                ClientAction::Complete(*reply)
            }
        }
    }

    fn sim_with(objs: Vec<Box<dyn ObjectBehavior<u32, u32>>>) -> Sim<u32, u32, u32> {
        let mut sim = Sim::new(SimConfig::default());
        for o in objs {
            sim.add_object(o);
        }
        sim
    }

    #[test]
    fn single_round_completes_with_quorum() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
        sim.invoke_at(
            0,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(NRound {
                need: 2,
                got: 0,
                rounds_left: 1,
            }),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].stat.rounds.get(), 1);
    }

    #[test]
    fn multi_round_counts_rounds() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(NRound {
                need: 3,
                got: 0,
                rounds_left: 3,
            }),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].stat.rounds.get(), 3);
    }

    #[test]
    fn tolerates_silent_minority() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Silent)]);
        sim.invoke_at(
            0,
            ClientId::reader(1),
            OpKind::Read,
            Box::new(NRound {
                need: 2,
                got: 0,
                rounds_left: 2,
            }),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1, "quorum of 2 out of 3 must suffice");
    }

    #[test]
    fn blocks_forever_without_quorum_but_terminates_sim() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Silent), Box::new(Silent)]);
        sim.invoke_at(
            0,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(NRound {
                need: 2,
                got: 0,
                rounds_left: 1,
            }),
        );
        let done = sim.run_to_quiescence();
        assert!(done.is_empty(), "operation must not complete");
        assert!(!sim.hit_event_cap(), "queue drains; no livelock");
    }

    #[test]
    fn crashed_client_never_completes() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
        sim.invoke_at(
            5,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(NRound {
                need: 3,
                got: 0,
                rounds_left: 2,
            }),
        );
        sim.crash_client_at(5, ClientId::reader(0));
        // Crash event shares the timestamp; it is scheduled after the invoke
        // (seq order), so the op starts then dies mid-flight.
        let done = sim.run_to_quiescence();
        assert!(done.is_empty());
    }

    #[test]
    fn sequential_ops_queue_fifo() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
        for i in 0..3 {
            sim.invoke_at(
                i,
                ClientId::writer(),
                OpKind::Write,
                Box::new(NRound {
                    need: 2,
                    got: 0,
                    rounds_left: 1,
                }),
            );
        }
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 3);
        let seqs: Vec<u64> = done.iter().map(|c| c.op_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // Ops are sequential: each starts after the previous completes.
        for w in done.windows(2) {
            assert!(w[1].stat.invoked_at >= w[0].stat.completed_at);
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
            for i in 0..5 {
                sim.invoke_at(
                    i * 3,
                    ClientId::reader((i % 2) as u32),
                    OpKind::Read,
                    Box::new(NRound {
                        need: 2,
                        got: 0,
                        rounds_left: 2,
                    }),
                );
            }
            sim.run_to_quiescence()
                .iter()
                .map(|c| (c.client, c.op_seq, c.stat.completed_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observations_are_recorded() {
        let mut sim = sim_with(vec![Box::new(Echo), Box::new(Echo), Box::new(Echo)]);
        sim.invoke_at(
            0,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(NRound {
                need: 2,
                got: 0,
                rounds_left: 1,
            }),
        );
        sim.run_to_quiescence();
        let obs = sim.trace().observations_of(ClientId::reader(0));
        assert!(!obs.is_empty());
        assert!(obs.iter().all(|o| o.round == 1));
    }
}
