//! Run traces: operation histories and per-client observation transcripts.
//!
//! Two consumers:
//!
//! * the **atomicity/regularity checkers** (in `rastor-core`) consume the
//!   operation history — invocation/response times plus outputs — to verify
//!   the paper's four atomicity properties on every recorded run;
//! * the **indistinguishability checker** (in `rastor-lowerbound`) compares
//!   a client's observation transcript across two runs: the paper's proofs
//!   hinge on a reader being unable to distinguish run `pr_i` from run
//!   `∆pr_i`, which operationally means its transcripts are identical.

use rastor_common::{ClientId, ObjectId, OpKind, OpStat};

/// One reply observed by a client: the complete information a client step
/// receives (the paper's steps are `⟨p, M⟩` — process plus received
/// messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Observation {
    /// Per-client operation sequence number.
    pub op_seq: u64,
    /// The round this reply answers.
    pub round: u32,
    /// The replying object.
    pub object: ObjectId,
    /// Debug rendering of the reply payload (protocol-agnostic).
    pub payload: String,
    /// Logical arrival time (excluded from indistinguishability comparison —
    /// asynchronous clients cannot read a global clock).
    pub at: u64,
}

/// The record of one operation in the history.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Invoking client.
    pub client: ClientId,
    /// Per-client operation sequence number.
    pub op_seq: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Invocation time.
    pub invoked_at: u64,
    /// Completion time and round count, if the operation completed.
    pub stat: Option<OpStat>,
    /// Debug rendering of the output, if completed.
    pub output: Option<String>,
}

impl OpRecord {
    /// Whether the operation completed in the recorded run.
    pub fn is_complete(&self) -> bool {
        self.stat.is_some()
    }
}

/// A full run trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ops: Vec<OpRecord>,
    observations: Vec<(ClientId, Observation)>,
    round_starts: Vec<(ClientId, u64, u32, u64)>,
    crashes: Vec<(ClientId, u64)>,
}

impl Trace {
    pub(crate) fn note_invoke(&mut self, client: ClientId, op_seq: u64, kind: OpKind, at: u64) {
        self.ops.push(OpRecord {
            client,
            op_seq,
            kind,
            invoked_at: at,
            stat: None,
            output: None,
        });
    }

    pub(crate) fn note_complete(
        &mut self,
        client: ClientId,
        op_seq: u64,
        output: String,
        stat: OpStat,
    ) {
        if let Some(rec) = self
            .ops
            .iter_mut()
            .rev()
            .find(|r| r.client == client && r.op_seq == op_seq)
        {
            rec.stat = Some(stat);
            rec.output = Some(output);
        }
    }

    pub(crate) fn note_observation(
        &mut self,
        client: ClientId,
        op_seq: u64,
        round: u32,
        object: ObjectId,
        payload: String,
        at: u64,
    ) {
        self.observations.push((
            client,
            Observation {
                op_seq,
                round,
                object,
                payload,
                at,
            },
        ));
    }

    pub(crate) fn note_round(&mut self, client: ClientId, op_seq: u64, round: u32, at: u64) {
        self.round_starts.push((client, op_seq, round, at));
    }

    pub(crate) fn note_crash(&mut self, client: ClientId, at: u64) {
        self.crashes.push((client, at));
    }

    /// All operation records, in invocation order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Operations invoked by one client, in order.
    pub fn ops_of(&self, client: ClientId) -> Vec<&OpRecord> {
        self.ops.iter().filter(|r| r.client == client).collect()
    }

    /// The observation transcript of one client: every reply it received,
    /// in arrival order. Two runs are indistinguishable to the client iff
    /// these transcripts are equal (ignoring the wall-clock `at` fields).
    pub fn observations_of(&self, client: ClientId) -> Vec<&Observation> {
        self.observations
            .iter()
            .filter(|(c, _)| *c == client)
            .map(|(_, o)| o)
            .collect()
    }

    /// A canonical, time-free rendering of a client's transcript, suitable
    /// for equality comparison across runs.
    pub fn transcript_of(&self, client: ClientId) -> Vec<String> {
        self.observations_of(client)
            .iter()
            .map(|o| format!("op{} rnd{} {}: {}", o.op_seq, o.round, o.object, o.payload))
            .collect()
    }

    /// Times at which a client started rounds: `(op_seq, round, at)`.
    pub fn rounds_of(&self, client: ClientId) -> Vec<(u64, u32, u64)> {
        self.round_starts
            .iter()
            .filter(|(c, ..)| *c == client)
            .map(|&(_, s, r, a)| (s, r, a))
            .collect()
    }

    /// Recorded client crashes `(client, at)`.
    pub fn crashes(&self) -> &[(ClientId, u64)] {
        &self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rastor_common::RoundCount;

    fn stat(kind: OpKind) -> OpStat {
        OpStat {
            kind,
            rounds: RoundCount(2),
            invoked_at: 0,
            completed_at: 9,
        }
    }

    #[test]
    fn invoke_then_complete_links_records() {
        let mut tr = Trace::default();
        tr.note_invoke(ClientId::writer(), 0, OpKind::Write, 0);
        assert!(!tr.ops()[0].is_complete());
        tr.note_complete(ClientId::writer(), 0, "Wrote".into(), stat(OpKind::Write));
        assert!(tr.ops()[0].is_complete());
        assert_eq!(tr.ops_of(ClientId::writer()).len(), 1);
        assert_eq!(tr.ops_of(ClientId::reader(0)).len(), 0);
    }

    #[test]
    fn transcripts_are_per_client_and_ordered() {
        let mut tr = Trace::default();
        tr.note_observation(ClientId::reader(0), 0, 1, ObjectId(2), "a".into(), 5);
        tr.note_observation(ClientId::reader(1), 0, 1, ObjectId(0), "b".into(), 6);
        tr.note_observation(ClientId::reader(0), 0, 2, ObjectId(1), "c".into(), 7);
        let t0 = tr.transcript_of(ClientId::reader(0));
        assert_eq!(t0, vec!["op0 rnd1 s2: a", "op0 rnd2 s1: c"]);
        assert_eq!(tr.transcript_of(ClientId::reader(1)).len(), 1);
    }

    #[test]
    fn transcript_ignores_wall_clock() {
        let mut a = Trace::default();
        let mut b = Trace::default();
        a.note_observation(ClientId::reader(0), 0, 1, ObjectId(0), "x".into(), 5);
        b.note_observation(ClientId::reader(0), 0, 1, ObjectId(0), "x".into(), 999);
        assert_eq!(
            a.transcript_of(ClientId::reader(0)),
            b.transcript_of(ClientId::reader(0))
        );
    }

    #[test]
    fn crashes_are_recorded() {
        let mut tr = Trace::default();
        tr.note_crash(ClientId::reader(3), 17);
        assert_eq!(tr.crashes(), &[(ClientId::reader(3), 17)]);
    }
}
