//! Message-scheduling controllers: the adversary's lever.
//!
//! In the paper's model the adversary controls asynchrony: it may delay any
//! message arbitrarily (but channels are reliable, so held messages are
//! merely "in transit"). A [`Controller`] sees every send and returns a
//! [`Verdict`]: deliver at a chosen time, or hold.
//!
//! Three stock controllers cover the workloads:
//!
//! * [`FixedDelay`] — constant latency; the base case for round counting.
//! * [`UniformDelay`] — seeded random latency in a range; soak tests.
//! * [`PartitionController`] — random latency plus a dynamic set of
//!   "slow links" whose messages are held until the partition heals.
//! * [`ScriptedController`] — full adversarial control via declarative
//!   rules; used to replay the lower-bound proof schedules.

use crate::engine::{Envelope, MsgDir};
use rastor_common::SplitMix64;
use rastor_common::{ClientId, ObjectId};
use std::collections::HashSet;

/// The controller's decision for one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Deliver at the given absolute time (clamped to ≥ now and per-link
    /// FIFO order by the engine).
    DeliverAt(u64),
    /// Keep the message "in transit" indefinitely; it may be released later
    /// via `Sim::release_held`.
    Hold,
}

/// Decides delivery schedules for every message send.
///
/// Implementations see the full envelope (endpoints, operation sequence
/// number, round, payload) so scripted adversaries can match on semantic
/// coordinates.
pub trait Controller<Q, R> {
    /// Schedule a client→object request.
    fn on_request(&mut self, env: &Envelope<Q>, now: u64) -> Verdict;
    /// Schedule an object→client reply.
    fn on_reply(&mut self, env: &Envelope<R>, now: u64) -> Verdict;
}

/// Constant message latency.
#[derive(Clone, Copy, Debug)]
pub struct FixedDelay {
    delay: u64,
}

impl FixedDelay {
    /// A controller delivering every message after exactly `delay` ticks.
    pub fn new(delay: u64) -> FixedDelay {
        FixedDelay { delay }
    }
}

impl<Q, R> Controller<Q, R> for FixedDelay {
    fn on_request(&mut self, _env: &Envelope<Q>, now: u64) -> Verdict {
        Verdict::DeliverAt(now + self.delay)
    }
    fn on_reply(&mut self, _env: &Envelope<R>, now: u64) -> Verdict {
        Verdict::DeliverAt(now + self.delay)
    }
}

/// Seeded uniform-random latency in `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct UniformDelay {
    rng: SplitMix64,
    lo: u64,
    hi: u64,
}

impl UniformDelay {
    /// A controller with latencies drawn uniformly from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(seed: u64, lo: u64, hi: u64) -> UniformDelay {
        assert!(lo <= hi, "empty delay range");
        UniformDelay {
            rng: SplitMix64::new(seed),
            lo,
            hi,
        }
    }

    fn draw(&mut self, now: u64) -> Verdict {
        Verdict::DeliverAt(now + self.rng.gen_range(self.lo, self.hi))
    }
}

impl<Q, R> Controller<Q, R> for UniformDelay {
    fn on_request(&mut self, _env: &Envelope<Q>, now: u64) -> Verdict {
        self.draw(now)
    }
    fn on_reply(&mut self, _env: &Envelope<R>, now: u64) -> Verdict {
        self.draw(now)
    }
}

/// Random latency plus dynamically slow (partitioned) links.
///
/// Messages crossing a slow link are delivered with a large extra delay,
/// modeling transient partitions while preserving channel reliability.
#[derive(Clone, Debug)]
pub struct PartitionController {
    base: UniformDelay,
    slow: HashSet<(ClientId, ObjectId)>,
    penalty: u64,
}

impl PartitionController {
    /// Wrap a uniform-delay controller with a slow-link penalty.
    pub fn new(seed: u64, lo: u64, hi: u64, penalty: u64) -> PartitionController {
        PartitionController {
            base: UniformDelay::new(seed, lo, hi),
            slow: HashSet::new(),
            penalty,
        }
    }

    /// Mark a client↔object link slow.
    pub fn slow_link(&mut self, client: ClientId, object: ObjectId) {
        self.slow.insert((client, object));
    }

    /// Heal a link.
    pub fn heal_link(&mut self, client: ClientId, object: ObjectId) {
        self.slow.remove(&(client, object));
    }

    fn verdict(&mut self, client: ClientId, object: ObjectId, now: u64) -> Verdict {
        let Verdict::DeliverAt(at) = self.base.draw(now) else {
            unreachable!("UniformDelay always delivers")
        };
        if self.slow.contains(&(client, object)) {
            Verdict::DeliverAt(at + self.penalty)
        } else {
            Verdict::DeliverAt(at)
        }
    }
}

impl<Q, R> Controller<Q, R> for PartitionController {
    fn on_request(&mut self, env: &Envelope<Q>, now: u64) -> Verdict {
        self.verdict(env.client, env.object, now)
    }
    fn on_reply(&mut self, env: &Envelope<R>, now: u64) -> Verdict {
        self.verdict(env.client, env.object, now)
    }
}

/// A declarative rule used by [`ScriptedController`].
///
/// A message matches a rule when every populated field matches. The first
/// matching rule's verdict applies; unmatched messages are delivered with
/// unit delay.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Match direction (request/reply), if set.
    pub dir: Option<MsgDir>,
    /// Match the client endpoint, if set.
    pub client: Option<ClientId>,
    /// Match the object endpoint, if set.
    pub object: Option<ObjectId>,
    /// Match a set of object endpoints, if non-empty.
    pub objects: Vec<ObjectId>,
    /// Match the per-client operation sequence number, if set.
    pub op_seq: Option<u64>,
    /// Match the round number, if set.
    pub round: Option<u32>,
    /// Verdict for matching messages.
    pub verdict: Verdict,
    /// If set, overrides `verdict` with `DeliverAt(now + extra_delay)` —
    /// a *relative* slowdown (e.g. "this reader's links are 10× slower").
    pub extra_delay: Option<u64>,
}

impl Rule {
    /// A rule matching everything, holding it.
    pub fn hold_all() -> Rule {
        Rule {
            dir: None,
            client: None,
            object: None,
            objects: Vec::new(),
            op_seq: None,
            round: None,
            verdict: Verdict::Hold,
            extra_delay: None,
        }
    }

    /// A rule matching everything, delivering after a relative delay.
    pub fn slow_all(extra_delay: u64) -> Rule {
        Rule {
            extra_delay: Some(extra_delay),
            ..Rule::hold_all()
        }
    }

    /// Builder: hold messages of a direction.
    pub fn hold(dir: MsgDir) -> Rule {
        Rule {
            dir: Some(dir),
            ..Rule::hold_all()
        }
    }

    /// Builder: restrict to a client.
    #[must_use]
    pub fn client(mut self, c: ClientId) -> Rule {
        self.client = Some(c);
        self
    }

    /// Builder: restrict to one object.
    #[must_use]
    pub fn object(mut self, o: ObjectId) -> Rule {
        self.object = Some(o);
        self
    }

    /// Builder: restrict to a set of objects.
    #[must_use]
    pub fn objects(mut self, os: impl IntoIterator<Item = ObjectId>) -> Rule {
        self.objects = os.into_iter().collect();
        self
    }

    /// Builder: restrict to an operation sequence number.
    #[must_use]
    pub fn op_seq(mut self, s: u64) -> Rule {
        self.op_seq = Some(s);
        self
    }

    /// Builder: restrict to a round number.
    #[must_use]
    pub fn round(mut self, r: u32) -> Rule {
        self.round = Some(r);
        self
    }

    /// Builder: override the verdict.
    #[must_use]
    pub fn verdict(mut self, v: Verdict) -> Rule {
        self.verdict = v;
        self
    }

    fn matches(
        &self,
        dir: MsgDir,
        client: ClientId,
        object: ObjectId,
        op_seq: u64,
        round: u32,
    ) -> bool {
        if let Some(d) = self.dir {
            if d != dir {
                return false;
            }
        }
        if let Some(c) = self.client {
            if c != client {
                return false;
            }
        }
        if let Some(o) = self.object {
            if o != object {
                return false;
            }
        }
        if !self.objects.is_empty() && !self.objects.contains(&object) {
            return false;
        }
        if let Some(s) = self.op_seq {
            if s != op_seq {
                return false;
            }
        }
        if let Some(r) = self.round {
            if r != round {
                return false;
            }
        }
        true
    }
}

/// Fully scripted adversarial scheduling: an ordered rule list evaluated
/// first-match-wins, falling back to unit delay.
///
/// The lower-bound run constructions express "round `i` of operation `op`
/// *skips* block `B`" as a rule holding the requests from that round to the
/// block's objects (no object in the block receives the message — it stays
/// in transit forever), exactly matching the paper's definition of skipping.
#[derive(Clone, Debug, Default)]
pub struct ScriptedController {
    rules: Vec<Rule>,
    default_delay: u64,
}

impl ScriptedController {
    /// An empty script: every message delivered with unit delay.
    pub fn new() -> ScriptedController {
        ScriptedController {
            rules: Vec::new(),
            default_delay: 1,
        }
    }

    /// Append a rule (later rules only apply if earlier ones don't match).
    pub fn push(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Builder-style rule append.
    #[must_use]
    pub fn with_rule(mut self, rule: Rule) -> ScriptedController {
        self.rules.push(rule);
        self
    }

    /// Set the fallback delay for unmatched messages.
    #[must_use]
    pub fn with_default_delay(mut self, d: u64) -> ScriptedController {
        self.default_delay = d;
        self
    }

    fn decide(
        &mut self,
        dir: MsgDir,
        client: ClientId,
        object: ObjectId,
        op_seq: u64,
        round: u32,
        now: u64,
    ) -> Verdict {
        for rule in &self.rules {
            if rule.matches(dir, client, object, op_seq, round) {
                if let Some(d) = rule.extra_delay {
                    return Verdict::DeliverAt(now + d);
                }
                return match rule.verdict {
                    Verdict::DeliverAt(at) => Verdict::DeliverAt(at.max(now)),
                    Verdict::Hold => Verdict::Hold,
                };
            }
        }
        Verdict::DeliverAt(now + self.default_delay)
    }
}

impl<Q, R> Controller<Q, R> for ScriptedController {
    fn on_request(&mut self, env: &Envelope<Q>, now: u64) -> Verdict {
        self.decide(
            MsgDir::Request,
            env.client,
            env.object,
            env.op_seq,
            env.round,
            now,
        )
    }
    fn on_reply(&mut self, env: &Envelope<R>, now: u64) -> Verdict {
        self.decide(
            MsgDir::Reply,
            env.client,
            env.object,
            env.op_seq,
            env.round,
            now,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(
        dir: MsgDir,
        client: ClientId,
        object: ObjectId,
        op_seq: u64,
        round: u32,
    ) -> Envelope<u8> {
        Envelope {
            id: crate::engine::MsgId(0),
            dir,
            client,
            object,
            op_seq,
            round,
            payload: 0,
        }
    }

    #[test]
    fn fixed_delay_is_constant() {
        let mut c = FixedDelay::new(5);
        let e = env(MsgDir::Request, ClientId::writer(), ObjectId(0), 0, 1);
        let v = Controller::<u8, u8>::on_request(&mut c, &e, 10);
        assert_eq!(v, Verdict::DeliverAt(15));
    }

    #[test]
    fn uniform_delay_is_seeded_deterministic() {
        let e = env(MsgDir::Request, ClientId::writer(), ObjectId(0), 0, 1);
        let draw = |seed| {
            let mut c = UniformDelay::new(seed, 1, 100);
            match Controller::<u8, u8>::on_request(&mut c, &e, 0) {
                Verdict::DeliverAt(at) => at,
                Verdict::Hold => unreachable!(),
            }
        };
        assert_eq!(draw(42), draw(42));
    }

    #[test]
    #[should_panic(expected = "empty delay range")]
    fn uniform_delay_rejects_inverted_range() {
        let _ = UniformDelay::new(0, 5, 1);
    }

    #[test]
    fn partition_penalizes_slow_links() {
        let mut c = PartitionController::new(1, 1, 1, 1000);
        c.slow_link(ClientId::reader(0), ObjectId(2));
        let slow = env(MsgDir::Request, ClientId::reader(0), ObjectId(2), 0, 1);
        let fast = env(MsgDir::Request, ClientId::reader(0), ObjectId(1), 0, 1);
        let vs = Controller::<u8, u8>::on_request(&mut c, &slow, 0);
        let vf = Controller::<u8, u8>::on_request(&mut c, &fast, 0);
        match (vs, vf) {
            (Verdict::DeliverAt(s), Verdict::DeliverAt(f)) => assert!(s > f + 500),
            _ => panic!("both links deliver"),
        }
        c.heal_link(ClientId::reader(0), ObjectId(2));
        let vh = Controller::<u8, u8>::on_request(&mut c, &slow, 0);
        assert_eq!(
            vh,
            Verdict::DeliverAt(1),
            "healed link uses base delay of 1"
        );
    }

    #[test]
    fn scripted_rules_first_match_wins() {
        let mut c = ScriptedController::new()
            .with_rule(
                Rule::hold(MsgDir::Request)
                    .client(ClientId::writer())
                    .round(2)
                    .objects([ObjectId(3)]),
            )
            .with_rule(Rule::hold_all().verdict(Verdict::DeliverAt(50)));
        // Writer round-2 request to s3 is held (skipped).
        let skip = env(MsgDir::Request, ClientId::writer(), ObjectId(3), 0, 2);
        assert_eq!(
            Controller::<u8, u8>::on_request(&mut c, &skip, 0),
            Verdict::Hold
        );
        // Everything else hits the catch-all DeliverAt(50).
        let other = env(MsgDir::Request, ClientId::writer(), ObjectId(1), 0, 2);
        assert_eq!(
            Controller::<u8, u8>::on_request(&mut c, &other, 0),
            Verdict::DeliverAt(50)
        );
    }

    #[test]
    fn scripted_fallback_delay() {
        let mut c = ScriptedController::new().with_default_delay(7);
        let e = env(MsgDir::Reply, ClientId::reader(1), ObjectId(0), 3, 1);
        assert_eq!(
            Controller::<u8, u8>::on_reply(&mut c, &e, 100),
            Verdict::DeliverAt(107)
        );
    }

    #[test]
    fn rule_matching_is_conjunctive() {
        let rule = Rule::hold(MsgDir::Request)
            .client(ClientId::reader(0))
            .op_seq(1)
            .round(2);
        assert!(rule.matches(MsgDir::Request, ClientId::reader(0), ObjectId(9), 1, 2));
        assert!(!rule.matches(MsgDir::Reply, ClientId::reader(0), ObjectId(9), 1, 2));
        assert!(!rule.matches(MsgDir::Request, ClientId::reader(1), ObjectId(9), 1, 2));
        assert!(!rule.matches(MsgDir::Request, ClientId::reader(0), ObjectId(9), 0, 2));
        assert!(!rule.matches(MsgDir::Request, ClientId::reader(0), ObjectId(9), 1, 1));
    }
}
