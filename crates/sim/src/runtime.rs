//! A real-thread deployment of the same protocol automata.
//!
//! The simulator in [`crate::engine`] is the reference substrate (it can
//! replay adversarial schedules deterministically), but the protocol code is
//! substrate-independent: this module runs the very same [`ObjectBehavior`]
//! and [`RoundClient`] implementations over OS threads and channels,
//! demonstrating that nothing in the protocols depends on simulation
//! artifacts. Examples use it to exercise realistic concurrency.
//!
//! Operations are driven by the same [`OpDriver`] the simulator uses, so a
//! [`ThreadClient`] can keep **many operations in flight** over its single
//! long-lived reply channel ([`ThreadClient::submit_op`] /
//! [`ThreadClient::pump`]) — the pipelining lever the sharded kv store
//! builds its batched API on — or drive one at a time with the blocking
//! [`ThreadClient::run_op`]. Outbound traffic is **coalesced**: every flush
//! sends at most one envelope per object carrying all pending round frames,
//! so a batch of operations headed to the same cluster shares its round
//! trips (and, at the objects, the per-envelope service delay).
//!
//! Unlike the simulator — which runs the paper's permissive round model —
//! the thread runtime drops replies for terminated rounds before they reach
//! an automaton ([`StalePolicy::DropLate`]): on a real deployment a delayed
//! object must not be able to feed protocol code stale-round data.
//!
//! Faults available here are crash-style (dropping an object's thread) and
//! arbitrary behaviors (any [`ObjectBehavior`] impl); scheduling adversaries
//! are only available in the simulator.
//!
//! The client side is substrate-agnostic: everything a [`ThreadClient`]
//! needs from a cluster is captured by the [`Transport`] trait (broadcast a
//! coalesced batch of request frames; deliver coalesced reply envelopes to
//! the client's channel). [`ThreadCluster`] is the in-process channel
//! substrate; `rastor_net` provides a TCP socket substrate speaking the
//! same trait, so the identical client/driver code runs over a real
//! network.

use crate::driver::{Dispatch, OpDriver, StalePolicy};
use crate::engine::{ObjectBehavior, RoundClient};
use rastor_common::{ClientId, ObjectId, OpKind, SplitMix64};
use rastor_obs::trace;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One round of one operation inside a coalesced request envelope. The
/// payload is shared: one allocation per broadcast, not one deep clone per
/// object.
pub struct ReqFrame<Q> {
    /// Nonce of the operation this frame belongs to (assigned at
    /// [`ThreadClient::submit_op`]).
    pub op_nonce: u64,
    /// The round the frame drives (1-based).
    pub round: u32,
    /// The trace id of the operation (`trace::NO_TRACE` when tracing is
    /// off) — carried on every hop so object workers can tag their spans.
    pub trace: u64,
    /// The round's request payload, shared across the broadcast.
    pub payload: Arc<Q>,
}

impl<Q> Clone for ReqFrame<Q> {
    fn clone(&self) -> ReqFrame<Q> {
        ReqFrame {
            op_nonce: self.op_nonce,
            round: self.round,
            trace: self.trace,
            payload: Arc::clone(&self.payload),
        }
    }
}

/// A coalesced request envelope: every frame a client had pending for this
/// object at flush time.
struct ObjRequest<Q, R> {
    from: ClientId,
    frames: Vec<ReqFrame<Q>>,
    reply_to: Sender<ObjReply<R>>,
}

/// One reply frame inside a coalesced reply envelope.
pub struct RepFrame<R> {
    /// Nonce of the operation the reply belongs to.
    pub op_nonce: u64,
    /// The round the reply answers.
    pub round: u32,
    /// The object's reply payload.
    pub payload: R,
}

/// A coalesced reply envelope, as received by a threaded client.
pub struct ObjReply<R> {
    /// The replying object.
    pub from: ObjectId,
    /// One frame per answered request frame.
    pub frames: Vec<RepFrame<R>>,
}

/// A cluster endpoint a [`ThreadClient`] can drive operations over: the
/// envelope send path extracted from [`ThreadCluster`] so substrates are
/// interchangeable.
///
/// Contract: `send_frames` broadcasts the batch to every live object of
/// the cluster as **one coalesced envelope per object**, and the cluster
/// delivers each object's reply envelope to `reply_to` (directly, for the
/// channel substrate; via a demultiplexing reader thread keyed on `from`,
/// for socket substrates). Delivery is best-effort: frames to crashed
/// objects — or lost to a broken connection — are silently dropped, and
/// the op driver's per-operation deadline is the recovery mechanism.
pub trait Transport<Q, R> {
    /// Broadcast a batch of frames from `from`, routing replies to
    /// `reply_to`.
    fn send_frames(&self, from: ClientId, frames: &[ReqFrame<Q>], reply_to: &Sender<ObjReply<R>>);
}

/// Shared ownership of a transport is itself a transport (clusters are
/// commonly held behind `Arc` across client threads).
impl<Q, R, T: Transport<Q, R> + ?Sized> Transport<Q, R> for Arc<T> {
    fn send_frames(&self, from: ClientId, frames: &[ReqFrame<Q>], reply_to: &Sender<ObjReply<R>>) {
        (**self).send_frames(from, frames, reply_to)
    }
}

/// Boxed transports delegate (so `Box<dyn Transport<…>>` slots into the
/// generic client APIs directly).
impl<Q, R, T: Transport<Q, R> + ?Sized> Transport<Q, R> for Box<T> {
    fn send_frames(&self, from: ClientId, frames: &[ReqFrame<Q>], reply_to: &Sender<ObjReply<R>>) {
        (**self).send_frames(from, frames, reply_to)
    }
}

/// A cluster of storage objects, each running on its own thread.
pub struct ThreadCluster<Q, R> {
    senders: Vec<Option<Sender<ObjRequest<Q, R>>>>,
    handles: Vec<Option<JoinHandle<()>>>,
    /// The per-envelope service jitter every worker runs with, kept so
    /// restarted workers behave like their predecessors.
    jitter: Option<Duration>,
}

/// Spawn one object worker thread: per-envelope jitter, then the
/// behavior, then one coalesced reply envelope per request envelope.
fn spawn_worker<Q, R>(
    oid: ObjectId,
    mut behavior: Box<dyn ObjectBehavior<Q, R> + Send>,
    jitter: Option<Duration>,
) -> (Sender<ObjRequest<Q, R>>, JoinHandle<()>)
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
{
    let (tx, rx) = channel::<ObjRequest<Q, R>>();
    let handle = std::thread::spawn(move || {
        // Per-thread deterministic jitter source.
        let mut rng = SplitMix64::new(u64::from(oid.0));
        while let Ok(req) = rx.recv() {
            if let Some(j) = jitter {
                std::thread::sleep(j.mul_f64(rng.next_f64()));
            }
            let frames: Vec<RepFrame<R>> = req
                .frames
                .iter()
                .filter_map(|f| {
                    // Traced frames get an `obj.apply` span covering the
                    // behavior call, with the trace context set so durable
                    // behaviors can hang WAL spans under the same trace.
                    // Untraced frames skip the clock reads entirely.
                    let rep = if f.trace == trace::NO_TRACE {
                        behavior.on_request(req.from, &f.payload)
                    } else {
                        let start = trace::epoch_us();
                        let prev = trace::set_current(f.trace);
                        let rep = behavior.on_request(req.from, &f.payload);
                        trace::set_current(prev);
                        trace::global().record(
                            f.trace,
                            trace::span::OBJ_APPLY,
                            u64::from(oid.0),
                            start,
                            trace::epoch_us(),
                        );
                        rep
                    };
                    rep.map(|payload| RepFrame {
                        op_nonce: f.op_nonce,
                        round: f.round,
                        payload,
                    })
                })
                .collect();
            if !frames.is_empty() {
                // The client may have finished; ignore send errors.
                let _ = req.reply_to.send(ObjReply { from: oid, frames });
            }
        }
    });
    (tx, handle)
}

impl<Q, R> ThreadCluster<Q, R>
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
{
    /// Spawn one thread per behavior. `jitter` optionally adds a random
    /// service delay up to the given duration **per envelope** (not per
    /// frame) — emulating one network/storage round trip per coalesced
    /// batch, which is exactly why batching pays.
    pub fn spawn(
        behaviors: Vec<Box<dyn ObjectBehavior<Q, R> + Send>>,
        jitter: Option<Duration>,
    ) -> ThreadCluster<Q, R> {
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for (i, behavior) in behaviors.into_iter().enumerate() {
            let (tx, handle) = spawn_worker(ObjectId(i as u32), behavior, jitter);
            senders.push(Some(tx));
            handles.push(Some(handle));
        }
        ThreadCluster {
            senders,
            handles,
            jitter,
        }
    }

    /// Number of objects (including crashed ones).
    pub fn num_objects(&self) -> usize {
        self.senders.len()
    }

    /// Whether object `id` is currently crashed.
    pub fn is_crashed(&self, id: ObjectId) -> bool {
        self.senders[id.index()].is_none()
    }

    /// Crash an object: its thread drains and exits; requests to it are
    /// silently dropped from now on.
    pub fn crash_object(&mut self, id: ObjectId) {
        self.senders[id.index()] = None;
        if let Some(h) = self.handles[id.index()].take() {
            // The thread exits once its channel disconnects.
            let _ = h.join();
        }
    }

    /// Restart an object with a fresh behavior: the slot is crashed first
    /// (if still live), then a new worker thread takes over the object id,
    /// with the same service-jitter profile as the rest of the cluster.
    ///
    /// The cluster is behavior-agnostic, so *what state the object comes
    /// back with* is the caller's policy: pass a freshly recovered
    /// `rastor_store`-style durable behavior for kill-then-recover
    /// semantics, or a blank one to model an amnesiac rejoin (which counts
    /// against the fault budget like any other deviation from "correct").
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn restart_object(&mut self, id: ObjectId, behavior: Box<dyn ObjectBehavior<Q, R> + Send>) {
        self.crash_object(id);
        let (tx, handle) = spawn_worker(id, behavior, self.jitter);
        self.senders[id.index()] = Some(tx);
        self.handles[id.index()] = Some(handle);
    }
}

impl<Q, R> Transport<Q, R> for ThreadCluster<Q, R> {
    /// Broadcast a batch of frames: one envelope per live object, each
    /// carrying the whole batch (payloads shared via `Arc`).
    fn send_frames(&self, from: ClientId, frames: &[ReqFrame<Q>], reply_to: &Sender<ObjReply<R>>) {
        for tx in self.senders.iter().flatten() {
            let _ = tx.send(ObjRequest {
                from,
                frames: frames.to_vec(),
                reply_to: reply_to.clone(),
            });
        }
    }
}

/// One finished operation as reported by [`ThreadClient::pump`].
#[derive(Clone, Debug)]
pub struct OpResult<Out> {
    /// The nonce [`ThreadClient::submit_op`] returned for the operation.
    pub nonce: u64,
    /// The operation's trace id (`trace::NO_TRACE` when tracing is off) —
    /// harvest seams use it to record their own span and close the trace.
    pub trace: u64,
    /// `Some((output, rounds))` on completion; `None` if the deadline
    /// passed first (the cluster could not supply enough replies).
    pub output: Option<(Out, u32)>,
}

/// A client endpoint for one or more [`ThreadCluster`]s.
///
/// The client owns one long-lived reply channel and one [`OpDriver`]: all
/// of its in-flight operations — across every target cluster — multiplex
/// over that single channel, keyed by nonce. Submissions buffer their round
/// frames; [`ThreadClient::pump`] flushes them coalesced (one envelope per
/// object per flush) and blocks until at least one operation finishes.
/// Replies for completed operations, and replies carrying a terminated
/// round of a live operation, are dropped by the driver before they can
/// reach an automaton.
pub struct ThreadClient<Q, R, Out> {
    id: ClientId,
    driver: OpDriver<Q, R, Out>,
    /// nonce → index into the `targets` slice passed to [`ThreadClient::pump`].
    routes: HashMap<u64, usize>,
    /// Buffered `(target, frame)` pairs awaiting the next flush.
    outbox: Vec<(usize, ReqFrame<Q>)>,
    reply_tx: Sender<ObjReply<R>>,
    reply_rx: Receiver<ObjReply<R>>,
}

impl<Q, R, Out> ThreadClient<Q, R, Out>
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
{
    /// Create a client endpoint.
    pub fn new(id: ClientId) -> ThreadClient<Q, R, Out> {
        let (reply_tx, reply_rx) = channel::<ObjReply<R>>();
        ThreadClient {
            id,
            driver: OpDriver::new(StalePolicy::DropLate),
            routes: HashMap::new(),
            outbox: Vec::new(),
            reply_tx,
            reply_rx,
        }
    }

    /// Microseconds on the process-wide trace clock ([`trace::epoch_us`])
    /// — one time base shared by operation deadlines and every span the
    /// stack records, so spans from different layers line up.
    fn now_us(&self) -> u64 {
        trace::epoch_us()
    }

    /// Number of live (submitted, unresolved) operations.
    pub fn in_flight(&self) -> usize {
        self.driver.in_flight()
    }

    /// Submit an operation against `targets[target]` without blocking.
    /// Returns the operation's nonce. The round-1 broadcast is buffered and
    /// goes out (coalesced with any other pending frames) on the next
    /// [`ThreadClient::pump`] or [`ThreadClient::try_pump`] — callers that
    /// may go idle after submitting should `try_pump` once to put the
    /// frames on the wire.
    pub fn submit_op(
        &mut self,
        target: usize,
        kind: OpKind,
        automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
        timeout: Duration,
    ) -> u64 {
        let now = self.now_us();
        // Saturate huge timeouts (e.g. Duration::MAX as "never") instead of
        // wrapping into an immediate deadline.
        let deadline = now.saturating_add(u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX));
        let b = self.driver.submit(kind, automaton, now, Some(deadline));
        self.routes.insert(b.nonce, target);
        self.outbox.push((
            target,
            ReqFrame {
                op_nonce: b.nonce,
                round: b.round,
                trace: b.trace,
                payload: Arc::new(b.payload),
            },
        ));
        b.nonce
    }

    /// Flush buffered frames: for each target with pending frames, one
    /// coalesced envelope per live object.
    ///
    /// # Panics
    ///
    /// Panics if a pending frame's target entry is `None` — the caller
    /// promised that target had no in-flight traffic.
    fn flush<T: Transport<Q, R> + ?Sized>(&mut self, targets: &[Option<&T>]) {
        if self.outbox.is_empty() {
            return;
        }
        let mut by_target: Vec<Vec<ReqFrame<Q>>> = (0..targets.len()).map(|_| Vec::new()).collect();
        for (t, frame) in self.outbox.drain(..) {
            by_target[t].push(frame);
        }
        for (t, frames) in by_target.into_iter().enumerate() {
            if !frames.is_empty() {
                targets[t]
                    .expect("target with pending frames must be supplied")
                    .send_frames(self.id, &frames, &self.reply_tx);
            }
        }
    }

    /// Dispatch one reply envelope through the driver, buffering next-round
    /// frames and collecting completions.
    fn dispatch(&mut self, rep: ObjReply<R>, done: &mut Vec<OpResult<Out>>) {
        let now = self.now_us();
        for frame in rep.frames {
            match self.driver.on_reply_at(
                frame.op_nonce,
                rep.from,
                frame.round,
                &frame.payload,
                now,
            ) {
                Dispatch::Unknown | Dispatch::StaleRound | Dispatch::Wait => {}
                Dispatch::NextRound(b) => {
                    let target = self.routes[&b.nonce];
                    self.outbox.push((
                        target,
                        ReqFrame {
                            op_nonce: b.nonce,
                            round: b.round,
                            trace: b.trace,
                            payload: Arc::new(b.payload),
                        },
                    ));
                }
                Dispatch::Complete(c) => {
                    self.routes.remove(&c.nonce);
                    done.push(OpResult {
                        nonce: c.nonce,
                        trace: c.trace,
                        output: Some((c.output, c.rounds.get())),
                    });
                }
            }
        }
    }

    /// Reap overdue operations into `done` (as `output: None`).
    fn reap_overdue(&mut self, done: &mut Vec<OpResult<Out>>) {
        for t in self.driver.expire(self.now_us()) {
            self.routes.remove(&t.nonce);
            done.push(OpResult {
                nonce: t.nonce,
                trace: t.trace,
                output: None,
            });
        }
    }

    /// Drive the in-flight operations as far as they can go **without
    /// blocking**: flush pending frames (putting freshly submitted
    /// operations on the wire), ingest every reply already queued, flush
    /// the next-round frames that produced, and reap overdue deadlines.
    /// Returns whatever resolved, possibly nothing.
    ///
    /// `targets` is indexed by the `target` passed at submission; entries
    /// for targets with no in-flight traffic may be `None` (this is what
    /// lets a multi-cluster caller lock only the clusters it is actually
    /// using). Targets may be any [`Transport`] substrate — in-process
    /// [`ThreadCluster`]s and socket-backed clusters drive identically.
    pub fn try_pump<T: Transport<Q, R> + ?Sized>(
        &mut self,
        targets: &[Option<&T>],
    ) -> Vec<OpResult<Out>> {
        let mut done = Vec::new();
        self.flush(targets);
        // Drain whatever is already queued without blocking, so same-batch
        // next-round frames coalesce into one envelope.
        while let Ok(rep) = self.reply_rx.try_recv() {
            self.dispatch(rep, &mut done);
        }
        self.flush(targets);
        self.reap_overdue(&mut done);
        done
    }

    /// Drive the in-flight operations: flush pending frames, ingest
    /// replies, and block until **at least one** operation resolves
    /// (completes or times out). Returns every operation that resolved;
    /// returns an empty vector only when nothing is in flight.
    ///
    /// `targets` is indexed as in [`ThreadClient::try_pump`].
    pub fn pump<T: Transport<Q, R> + ?Sized>(
        &mut self,
        targets: &[Option<&T>],
    ) -> Vec<OpResult<Out>> {
        let mut done = Vec::new();
        loop {
            done.extend(self.try_pump(targets));
            if !done.is_empty() || self.driver.in_flight() == 0 {
                return done;
            }
            // Nothing resolved yet: block until the next reply or the
            // earliest deadline.
            let now = self.now_us();
            let wait = self
                .driver
                .next_deadline()
                .map_or(Duration::from_secs(60), |d| {
                    Duration::from_micros(d.saturating_sub(now))
                });
            match self.reply_rx.recv_timeout(wait) {
                Ok(rep) => self.dispatch(rep, &mut done),
                Err(RecvTimeoutError::Timeout) => {}
                // Unreachable in practice (the client holds a sender clone),
                // but don't spin if it ever happens.
                Err(RecvTimeoutError::Disconnected) => std::thread::sleep(wait),
            }
        }
    }

    /// Drive one operation to completion over the cluster, blocking the
    /// calling thread — the closed-loop convenience built on the same
    /// driver as the pipelined path. Returns `None` if the cluster cannot
    /// supply enough replies (too many crashed objects) within `timeout` —
    /// a single deadline for the whole operation, not per reply.
    ///
    /// The driver-side kind metadata is fixed at [`OpKind::Read`] here —
    /// it is a statistics label this path never surfaces; use
    /// [`ThreadClient::submit_op`] when the kind matters.
    ///
    /// # Panics
    ///
    /// Panics if pipelined operations are still in flight on this client
    /// (drive them to quiescence with [`ThreadClient::pump`] first).
    pub fn run_op<T: Transport<Q, R> + ?Sized>(
        &mut self,
        cluster: &T,
        automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
        timeout: Duration,
    ) -> Option<(Out, u32)> {
        assert!(
            self.driver.in_flight() == 0,
            "run_op on a client with pipelined operations in flight"
        );
        let nonce = self.submit_op(0, OpKind::Read, automaton, timeout);
        let targets = [Some(cluster)];
        loop {
            for r in self.pump(&targets) {
                if r.nonce == nonce {
                    return r.output;
                }
            }
            if !self.driver.is_live(nonce) {
                return None;
            }
        }
    }
}

impl<Q, R> Drop for ThreadCluster<Q, R> {
    fn drop(&mut self) {
        for tx in &mut self.senders {
            *tx = None;
        }
        for h in &mut self.handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ObjectBehavior<u32, u32> for Echo {
        fn on_request(&mut self, _from: ClientId, req: &u32) -> Option<u32> {
            Some(req + 10)
        }
    }

    /// Echoes after sleeping — a straggling (but honest) object whose
    /// replies routinely arrive rounds late.
    struct DelayedEcho(Duration);
    impl ObjectBehavior<u32, u32> for DelayedEcho {
        fn on_request(&mut self, _from: ClientId, req: &u32) -> Option<u32> {
            std::thread::sleep(self.0);
            Some(req + 10)
        }
    }

    struct Collect {
        need: usize,
        got: usize,
    }
    impl RoundClient<u32, u32> for Collect {
        type Out = u32;
        fn start(&mut self) -> u32 {
            1
        }
        fn on_reply(
            &mut self,
            _from: ObjectId,
            _round: u32,
            reply: &u32,
        ) -> ClientAction<u32, u32> {
            self.got += 1;
            if self.got >= self.need {
                ClientAction::Complete(*reply)
            } else {
                ClientAction::Wait
            }
        }
    }

    // The panic-on-stale-round regression automaton (the
    // [`StalePolicy::DropLate`] guard) is shared with the driver's unit
    // tests.
    use crate::driver::StrictRounds;
    use crate::engine::ClientAction;

    fn cluster(n: usize) -> ThreadCluster<u32, u32> {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..n).map(|_| Box::new(Echo) as _).collect();
        ThreadCluster::spawn(behaviors, None)
    }

    #[test]
    fn threaded_op_completes() {
        let cl = cluster(4);
        let mut client = ThreadClient::new(ClientId::reader(0));
        let (out, rounds) = client
            .run_op(
                &cl,
                Box::new(Collect { need: 3, got: 0 }),
                Duration::from_secs(5),
            )
            .expect("completes");
        assert_eq!(out, 11);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn tolerates_crashed_minority() {
        let mut cl = cluster(4);
        cl.crash_object(ObjectId(3));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }

    #[test]
    fn times_out_without_quorum() {
        let mut cl = cluster(3);
        cl.crash_object(ObjectId(1));
        cl.crash_object(ObjectId(2));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_millis(50),
        );
        assert!(res.is_none());
    }

    #[test]
    fn reused_reply_channel_discards_stragglers() {
        // Each op completes at 2 of 4 replies, leaving 2 stragglers queued
        // on the client's long-lived channel; the next op must skip them.
        let cl = cluster(4);
        let mut client = ThreadClient::new(ClientId::reader(0));
        for _ in 0..10 {
            let (out, rounds) = client
                .run_op(
                    &cl,
                    Box::new(Collect { need: 2, got: 0 }),
                    Duration::from_secs(5),
                )
                .expect("completes");
            assert_eq!(out, 11);
            assert_eq!(rounds, 1);
        }
    }

    #[test]
    fn restart_revives_a_crashed_slot() {
        let mut cl = cluster(3);
        cl.crash_object(ObjectId(1));
        cl.crash_object(ObjectId(2));
        assert!(cl.is_crashed(ObjectId(1)));
        let mut client = ThreadClient::new(ClientId::reader(0));
        // Quorum of 3 unreachable with 2 of 3 down.
        assert!(client
            .run_op(
                &cl,
                Box::new(Collect { need: 3, got: 0 }),
                Duration::from_millis(50),
            )
            .is_none());
        // Restarting one slot brings the quorum back.
        cl.restart_object(ObjectId(1), Box::new(Echo));
        assert!(!cl.is_crashed(ObjectId(1)));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 2, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }

    #[test]
    fn jitter_does_not_break_completion() {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..5).map(|_| Box::new(Echo) as _).collect();
        let cl = ThreadCluster::spawn(behaviors, Some(Duration::from_millis(2)));
        let mut client = ThreadClient::new(ClientId::writer());
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 4, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }

    #[test]
    fn delayed_object_replies_never_reach_terminated_rounds() {
        // Regression for the round-staleness hardening: one object lags
        // every reply by 500 µs while three fast objects race the automaton
        // through 40 rounds at quorum 2. The laggard's replies arrive
        // rounds late for a still-live operation; `StrictRounds` panics if
        // any of them reaches it.
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> = vec![
            Box::new(Echo),
            Box::new(Echo),
            Box::new(Echo),
            Box::new(DelayedEcho(Duration::from_micros(500))),
        ];
        let cl = ThreadCluster::spawn(behaviors, None);
        let mut client = ThreadClient::new(ClientId::reader(0));
        let (out, rounds) = client
            .run_op(
                &cl,
                Box::new(StrictRounds::new(2, 40)),
                Duration::from_secs(10),
            )
            .expect("completes despite the laggard");
        assert_eq!(out, 50); // round-40 payload (40) + 10
        assert_eq!(rounds, 40);
        // And the next operation still works over the same channel, with
        // the laggard's backlog draining into it as unknown nonces.
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_secs(10),
        );
        assert!(res.is_some());
    }

    #[test]
    fn pipelined_ops_multiplex_one_channel() {
        let cl = cluster(4);
        let targets = [Some(&cl)];
        let mut client: ThreadClient<u32, u32, u32> = ThreadClient::new(ClientId::reader(0));
        let mut live: Vec<u64> = (0..8)
            .map(|_| {
                client.submit_op(
                    0,
                    OpKind::Read,
                    Box::new(StrictRounds::new(3, 3)),
                    Duration::from_secs(5),
                )
            })
            .collect();
        assert_eq!(client.in_flight(), 8);
        while !live.is_empty() {
            for r in client.pump(&targets) {
                let (out, rounds) = r.output.expect("no timeouts expected");
                assert_eq!(out, 13); // round-3 payload (3) + 10
                assert_eq!(rounds, 3);
                let idx = live.iter().position(|&n| n == r.nonce).expect("live nonce");
                live.remove(idx);
            }
        }
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn pipelined_timeouts_are_reported_per_op() {
        let mut cl = cluster(3);
        cl.crash_object(ObjectId(1));
        cl.crash_object(ObjectId(2));
        let targets = [Some(&cl)];
        let mut client: ThreadClient<u32, u32, u32> = ThreadClient::new(ClientId::reader(0));
        // One op that can complete on the lone survivor, one that cannot.
        let ok = client.submit_op(
            0,
            OpKind::Read,
            Box::new(Collect { need: 1, got: 0 }),
            Duration::from_secs(5),
        );
        let stuck = client.submit_op(
            0,
            OpKind::Read,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_millis(80),
        );
        let mut seen = HashMap::new();
        while client.in_flight() > 0 {
            for r in client.pump(&targets) {
                seen.insert(r.nonce, r.output.is_some());
            }
        }
        assert_eq!(seen.get(&ok), Some(&true));
        assert_eq!(seen.get(&stuck), Some(&false));
    }
}
