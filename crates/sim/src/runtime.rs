//! A real-thread deployment of the same protocol automata.
//!
//! The simulator in [`crate::engine`] is the reference substrate (it can
//! replay adversarial schedules deterministically), but the protocol code is
//! substrate-independent: this module runs the very same [`ObjectBehavior`]
//! and [`RoundClient`] implementations over OS threads and channels,
//! demonstrating that nothing in the protocols depends on simulation
//! artifacts. Examples use it to exercise realistic concurrency.
//!
//! Faults available here are crash-style (dropping an object's thread) and
//! arbitrary behaviors (any [`ObjectBehavior`] impl); scheduling adversaries
//! are only available in the simulator.

use crate::engine::{ClientAction, ObjectBehavior, RoundClient};
use rastor_common::{ClientId, ObjectId, SplitMix64};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct ObjRequest<Q, R> {
    from: ClientId,
    op_nonce: u64,
    round: u32,
    /// Shared round payload: one allocation per broadcast, not one deep
    /// clone per object.
    payload: Arc<Q>,
    reply_to: Sender<ObjReply<R>>,
}

/// A reply as received by a threaded client.
struct ObjReply<R> {
    from: ObjectId,
    op_nonce: u64,
    round: u32,
    payload: R,
}

/// A cluster of storage objects, each running on its own thread.
pub struct ThreadCluster<Q, R> {
    senders: Vec<Option<Sender<ObjRequest<Q, R>>>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

impl<Q, R> ThreadCluster<Q, R>
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
{
    /// Spawn one thread per behavior. `jitter` optionally adds a per-request
    /// random sleep up to the given duration, surfacing interleavings.
    pub fn spawn(
        behaviors: Vec<Box<dyn ObjectBehavior<Q, R> + Send>>,
        jitter: Option<Duration>,
    ) -> ThreadCluster<Q, R> {
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for (i, mut behavior) in behaviors.into_iter().enumerate() {
            let (tx, rx) = channel::<ObjRequest<Q, R>>();
            let oid = ObjectId(i as u32);
            let handle = std::thread::spawn(move || {
                // Per-thread deterministic jitter source.
                let mut rng = SplitMix64::new(i as u64);
                while let Ok(req) = rx.recv() {
                    if let Some(j) = jitter {
                        std::thread::sleep(j.mul_f64(rng.next_f64()));
                    }
                    if let Some(payload) = behavior.on_request(req.from, &req.payload) {
                        // The client may have finished; ignore send errors.
                        let _ = req.reply_to.send(ObjReply {
                            from: oid,
                            op_nonce: req.op_nonce,
                            round: req.round,
                            payload,
                        });
                    }
                }
            });
            senders.push(Some(tx));
            handles.push(Some(handle));
        }
        ThreadCluster { senders, handles }
    }

    /// Number of objects (including crashed ones).
    pub fn num_objects(&self) -> usize {
        self.senders.len()
    }

    /// Crash an object: its thread drains and exits; requests to it are
    /// silently dropped from now on.
    pub fn crash_object(&mut self, id: ObjectId) {
        self.senders[id.index()] = None;
        if let Some(h) = self.handles[id.index()].take() {
            // The thread exits once its channel disconnects.
            let _ = h.join();
        }
    }

    fn broadcast(
        &self,
        from: ClientId,
        op_nonce: u64,
        round: u32,
        payload: Q,
        reply_to: &Sender<ObjReply<R>>,
    ) {
        let payload = Arc::new(payload);
        for tx in self.senders.iter().flatten() {
            let _ = tx.send(ObjRequest {
                from,
                op_nonce,
                round,
                payload: Arc::clone(&payload),
                reply_to: reply_to.clone(),
            });
        }
    }
}

/// A blocking client endpoint for a [`ThreadCluster`].
///
/// The client owns one long-lived reply channel, reused across operations
/// (one channel allocation per client, not per op). An operation returns as
/// soon as its automaton completes — at a quorum of `S − t` replies for the
/// protocol clients — without draining the stragglers; late replies stay
/// queued and are discarded by nonce on the next operation.
pub struct ThreadClient<Q, R> {
    id: ClientId,
    next_nonce: u64,
    reply_tx: Sender<ObjReply<R>>,
    reply_rx: Receiver<ObjReply<R>>,
    _marker: std::marker::PhantomData<Q>,
}

impl<Q, R> ThreadClient<Q, R>
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
{
    /// Create a client endpoint.
    pub fn new(id: ClientId) -> ThreadClient<Q, R> {
        let (reply_tx, reply_rx) = channel::<ObjReply<R>>();
        ThreadClient {
            id,
            next_nonce: 0,
            reply_tx,
            reply_rx,
            _marker: std::marker::PhantomData,
        }
    }

    /// Drive one operation to completion over the cluster, blocking the
    /// calling thread. Returns `None` if the cluster cannot supply enough
    /// replies (too many crashed objects) within `timeout` — a single
    /// deadline for the whole operation, not per reply.
    pub fn run_op<Out>(
        &mut self,
        cluster: &ThreadCluster<Q, R>,
        mut automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
        timeout: Duration,
    ) -> Option<(Out, u32)> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let deadline = Instant::now() + timeout;
        let mut round = 1u32;
        let first = automaton.start();
        cluster.broadcast(self.id, nonce, round, first, &self.reply_tx);
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let reply = self.reply_rx.recv_timeout(remaining).ok()?;
            if reply.op_nonce != nonce {
                // A straggler from a previous operation on this channel.
                continue;
            }
            match automaton.on_reply(reply.from, reply.round, &reply.payload) {
                ClientAction::Wait => {}
                ClientAction::NextRound(q) => {
                    round += 1;
                    cluster.broadcast(self.id, nonce, round, q, &self.reply_tx);
                }
                ClientAction::Complete(out) => return Some((out, round)),
            }
        }
    }
}

impl<Q, R> Drop for ThreadCluster<Q, R> {
    fn drop(&mut self) {
        for tx in &mut self.senders {
            *tx = None;
        }
        for h in &mut self.handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ObjectBehavior<u32, u32> for Echo {
        fn on_request(&mut self, _from: ClientId, req: &u32) -> Option<u32> {
            Some(req + 10)
        }
    }

    struct Collect {
        need: usize,
        got: usize,
    }
    impl RoundClient<u32, u32> for Collect {
        type Out = u32;
        fn start(&mut self) -> u32 {
            1
        }
        fn on_reply(
            &mut self,
            _from: ObjectId,
            _round: u32,
            reply: &u32,
        ) -> ClientAction<u32, u32> {
            self.got += 1;
            if self.got >= self.need {
                ClientAction::Complete(*reply)
            } else {
                ClientAction::Wait
            }
        }
    }

    fn cluster(n: usize) -> ThreadCluster<u32, u32> {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..n).map(|_| Box::new(Echo) as _).collect();
        ThreadCluster::spawn(behaviors, None)
    }

    #[test]
    fn threaded_op_completes() {
        let cl = cluster(4);
        let mut client = ThreadClient::new(ClientId::reader(0));
        let (out, rounds) = client
            .run_op(
                &cl,
                Box::new(Collect { need: 3, got: 0 }),
                Duration::from_secs(5),
            )
            .expect("completes");
        assert_eq!(out, 11);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn tolerates_crashed_minority() {
        let mut cl = cluster(4);
        cl.crash_object(ObjectId(3));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }

    #[test]
    fn times_out_without_quorum() {
        let mut cl = cluster(3);
        cl.crash_object(ObjectId(1));
        cl.crash_object(ObjectId(2));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_millis(50),
        );
        assert!(res.is_none());
    }

    #[test]
    fn reused_reply_channel_discards_stragglers() {
        // Each op completes at 2 of 4 replies, leaving 2 stragglers queued
        // on the client's long-lived channel; the next op must skip them.
        let cl = cluster(4);
        let mut client = ThreadClient::new(ClientId::reader(0));
        for _ in 0..10 {
            let (out, rounds) = client
                .run_op(
                    &cl,
                    Box::new(Collect { need: 2, got: 0 }),
                    Duration::from_secs(5),
                )
                .expect("completes");
            assert_eq!(out, 11);
            assert_eq!(rounds, 1);
        }
    }

    #[test]
    fn jitter_does_not_break_completion() {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..5).map(|_| Box::new(Echo) as _).collect();
        let cl = ThreadCluster::spawn(behaviors, Some(Duration::from_millis(2)));
        let mut client = ThreadClient::new(ClientId::writer());
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 4, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }
}
