//! A real-thread deployment of the same protocol automata.
//!
//! The simulator in [`crate::engine`] is the reference substrate (it can
//! replay adversarial schedules deterministically), but the protocol code is
//! substrate-independent: this module runs the very same [`ObjectBehavior`]
//! and [`RoundClient`] implementations over OS threads and channels,
//! demonstrating that nothing in the protocols depends on simulation
//! artifacts. Examples use it to exercise realistic concurrency.
//!
//! Faults available here are crash-style (dropping an object's thread) and
//! arbitrary behaviors (any [`ObjectBehavior`] impl); scheduling adversaries
//! are only available in the simulator.

use crate::engine::{ClientAction, ObjectBehavior, RoundClient};
use rastor_common::{ClientId, ObjectId, SplitMix64};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

struct ObjRequest<Q, R> {
    from: ClientId,
    op_nonce: u64,
    round: u32,
    payload: Q,
    reply_to: Sender<ObjReply<R>>,
}

/// A reply as received by a threaded client.
struct ObjReply<R> {
    from: ObjectId,
    op_nonce: u64,
    round: u32,
    payload: R,
}

/// A cluster of storage objects, each running on its own thread.
pub struct ThreadCluster<Q, R> {
    senders: Vec<Option<Sender<ObjRequest<Q, R>>>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

impl<Q, R> ThreadCluster<Q, R>
where
    Q: Send + 'static,
    R: Send + 'static,
{
    /// Spawn one thread per behavior. `jitter` optionally adds a per-request
    /// random sleep up to the given duration, surfacing interleavings.
    pub fn spawn(
        behaviors: Vec<Box<dyn ObjectBehavior<Q, R> + Send>>,
        jitter: Option<Duration>,
    ) -> ThreadCluster<Q, R> {
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for (i, mut behavior) in behaviors.into_iter().enumerate() {
            let (tx, rx) = channel::<ObjRequest<Q, R>>();
            let oid = ObjectId(i as u32);
            let handle = std::thread::spawn(move || {
                // Per-thread deterministic jitter source.
                let mut rng = SplitMix64::new(i as u64);
                while let Ok(req) = rx.recv() {
                    if let Some(j) = jitter {
                        std::thread::sleep(j.mul_f64(rng.next_f64()));
                    }
                    if let Some(payload) = behavior.on_request(req.from, &req.payload) {
                        // The client may have finished; ignore send errors.
                        let _ = req.reply_to.send(ObjReply {
                            from: oid,
                            op_nonce: req.op_nonce,
                            round: req.round,
                            payload,
                        });
                    }
                }
            });
            senders.push(Some(tx));
            handles.push(Some(handle));
        }
        ThreadCluster { senders, handles }
    }

    /// Number of objects (including crashed ones).
    pub fn num_objects(&self) -> usize {
        self.senders.len()
    }

    /// Crash an object: its thread drains and exits; requests to it are
    /// silently dropped from now on.
    pub fn crash_object(&mut self, id: ObjectId) {
        self.senders[id.index()] = None;
        if let Some(h) = self.handles[id.index()].take() {
            // The thread exits once its channel disconnects.
            let _ = h.join();
        }
    }

    fn broadcast(
        &self,
        from: ClientId,
        op_nonce: u64,
        round: u32,
        payload: &Q,
        reply_to: &Sender<ObjReply<R>>,
    ) where
        Q: Clone,
    {
        for tx in self.senders.iter().flatten() {
            let _ = tx.send(ObjRequest {
                from,
                op_nonce,
                round,
                payload: payload.clone(),
                reply_to: reply_to.clone(),
            });
        }
    }
}

/// A blocking client endpoint for a [`ThreadCluster`].
pub struct ThreadClient<Q, R> {
    id: ClientId,
    next_nonce: u64,
    _marker: std::marker::PhantomData<(Q, R)>,
}

impl<Q, R> ThreadClient<Q, R>
where
    Q: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Create a client endpoint.
    pub fn new(id: ClientId) -> ThreadClient<Q, R> {
        ThreadClient {
            id,
            next_nonce: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Drive one operation to completion over the cluster, blocking the
    /// calling thread. Returns `None` if the cluster can no longer supply
    /// enough replies (too many crashed objects) — detected by a timeout.
    pub fn run_op<Out>(
        &mut self,
        cluster: &ThreadCluster<Q, R>,
        mut automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
        timeout: Duration,
    ) -> Option<(Out, u32)> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let (tx, rx) = channel::<ObjReply<R>>();
        let mut round = 1u32;
        let first = automaton.start();
        cluster.broadcast(self.id, nonce, round, &first, &tx);
        loop {
            let reply = rx.recv_timeout(timeout).ok()?;
            if reply.op_nonce != nonce {
                continue;
            }
            match automaton.on_reply(reply.from, reply.round, &reply.payload) {
                ClientAction::Wait => {}
                ClientAction::NextRound(q) => {
                    round += 1;
                    cluster.broadcast(self.id, nonce, round, &q, &tx);
                }
                ClientAction::Complete(out) => return Some((out, round)),
            }
        }
    }
}

impl<Q, R> Drop for ThreadCluster<Q, R> {
    fn drop(&mut self) {
        for tx in &mut self.senders {
            *tx = None;
        }
        for h in &mut self.handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ObjectBehavior<u32, u32> for Echo {
        fn on_request(&mut self, _from: ClientId, req: &u32) -> Option<u32> {
            Some(req + 10)
        }
    }

    struct Collect {
        need: usize,
        got: usize,
    }
    impl RoundClient<u32, u32> for Collect {
        type Out = u32;
        fn start(&mut self) -> u32 {
            1
        }
        fn on_reply(
            &mut self,
            _from: ObjectId,
            _round: u32,
            reply: &u32,
        ) -> ClientAction<u32, u32> {
            self.got += 1;
            if self.got >= self.need {
                ClientAction::Complete(*reply)
            } else {
                ClientAction::Wait
            }
        }
    }

    fn cluster(n: usize) -> ThreadCluster<u32, u32> {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..n).map(|_| Box::new(Echo) as _).collect();
        ThreadCluster::spawn(behaviors, None)
    }

    #[test]
    fn threaded_op_completes() {
        let cl = cluster(4);
        let mut client = ThreadClient::new(ClientId::reader(0));
        let (out, rounds) = client
            .run_op(
                &cl,
                Box::new(Collect { need: 3, got: 0 }),
                Duration::from_secs(5),
            )
            .expect("completes");
        assert_eq!(out, 11);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn tolerates_crashed_minority() {
        let mut cl = cluster(4);
        cl.crash_object(ObjectId(3));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }

    #[test]
    fn times_out_without_quorum() {
        let mut cl = cluster(3);
        cl.crash_object(ObjectId(1));
        cl.crash_object(ObjectId(2));
        let mut client = ThreadClient::new(ClientId::reader(0));
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 3, got: 0 }),
            Duration::from_millis(50),
        );
        assert!(res.is_none());
    }

    #[test]
    fn jitter_does_not_break_completion() {
        let behaviors: Vec<Box<dyn ObjectBehavior<u32, u32> + Send>> =
            (0..5).map(|_| Box::new(Echo) as _).collect();
        let cl = ThreadCluster::spawn(behaviors, Some(Duration::from_millis(2)));
        let mut client = ThreadClient::new(ClientId::writer());
        let res = client.run_op(
            &cl,
            Box::new(Collect { need: 4, got: 0 }),
            Duration::from_secs(5),
        );
        assert!(res.is_some());
    }
}
