//! Property-based tests of the collect engine's decision rule — the safety
//! core of the unauthenticated Byzantine reads.
//!
//! Strategy: generate a random "world" (a complete write at some timestamp,
//! random staleness among correct objects, t adversarial views of arbitrary
//! shape), feed the views to the engine, and assert the decision is always
//! genuine and fresh.

use proptest::prelude::*;
use rastor_common::{ClusterConfig, ObjectId, RegId, Timestamp, TsVal, Value};
use rastor_core::collect::{CollectEngine, CollectStatus};
use rastor_core::msg::{ObjectView, Rep, Stamped};

fn stamped(ts: u64) -> Stamped {
    Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(ts * 100)))
}

/// A correct object's view after observing pre-writes up to `pw` and
/// commits up to `w` (histories contain everything adopted).
fn honest_view(pw: u64, w: u64) -> ObjectView {
    let hist: Vec<Stamped> = (1..=pw).map(stamped).collect();
    ObjectView {
        pw: if pw == 0 {
            Stamped::bottom()
        } else {
            stamped(pw)
        },
        w: if w == 0 {
            Stamped::bottom()
        } else {
            stamped(w)
        },
        hist,
    }
}

/// An adversarial view: arbitrary forged pair in all fields.
fn forged_view(ts: u64, val: u64) -> ObjectView {
    let s = Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(val)));
    ObjectView {
        pw: s.clone(),
        w: s.clone(),
        hist: vec![s],
    }
}

proptest! {
    /// After a complete write at ts* (commit quorum = S−t objects), any
    /// reply set that lets the engine decide yields a genuine pair ≥ ts*.
    #[test]
    fn decisions_are_fresh_and_genuine(
        t in 1usize..4,
        ts_star in 1u64..20,
        byz_ts in 0u64..1000,
        byz_val in 0u64..1000,
        straggler_lag in 0u64..3,
    ) {
        let cfg = ClusterConfig::byzantine(t).unwrap();
        let s = cfg.num_objects();
        let mut e = CollectEngine::with_min_rounds(cfg, vec![RegId::WRITER], None, 1);

        // Commit quorum: objects t..s-1 hold w = ts* (2t+1 of them, all
        // correct). Objects 0..t are Byzantine and report forgeries.
        // One designated straggler among the correct lags behind.
        let mut status = CollectStatus::Wait;
        for oid in 0..s {
            let rep = if oid < t {
                Rep::Views { views: vec![(RegId::WRITER, forged_view(byz_ts, byz_val))] }
            } else if oid == t {
                // Straggler: saw the pre-write but maybe not the commit.
                let lag = ts_star.saturating_sub(straggler_lag);
                Rep::Views { views: vec![(RegId::WRITER, honest_view(ts_star, lag))] }
            } else {
                Rep::Views { views: vec![(RegId::WRITER, honest_view(ts_star, ts_star))] }
            };
            status = e.on_reply(ObjectId(oid as u32), 1, &rep);
            if status == CollectStatus::Decided {
                break;
            }
        }
        prop_assert_eq!(status, CollectStatus::Decided, "all replies in: must decide");
        let decision = &e.decisions()[&RegId::WRITER];
        // Fresh: at least the completed write.
        prop_assert!(
            decision.pair.ts >= Timestamp(ts_star),
            "stale decision {:?} after write {}", decision, ts_star
        );
        // Genuine: the returned pair is one the writer produced (value
        // convention: ts*100), never the forgery.
        prop_assert_eq!(
            decision.pair.val.clone(),
            Value::from_u64(decision.pair.ts.0 * 100),
            "forged value returned"
        );
    }

    /// With no write at all, t forgers can never push the engine off ⊥.
    #[test]
    fn no_write_means_bottom(
        t in 1usize..4,
        byz_ts in 1u64..1000,
    ) {
        let cfg = ClusterConfig::byzantine(t).unwrap();
        let s = cfg.num_objects();
        let mut e = CollectEngine::with_min_rounds(cfg, vec![RegId::WRITER], None, 1);
        let mut status = CollectStatus::Wait;
        for oid in 0..s {
            let rep = if oid < t {
                Rep::Views { views: vec![(RegId::WRITER, forged_view(byz_ts, 7))] }
            } else {
                Rep::Views { views: vec![(RegId::WRITER, honest_view(0, 0))] }
            };
            status = e.on_reply(ObjectId(oid as u32), 1, &rep);
            if status == CollectStatus::Decided {
                break;
            }
        }
        prop_assert_eq!(status, CollectStatus::Decided);
        prop_assert!(e.decisions()[&RegId::WRITER].pair.is_bottom());
    }

    /// The engine refuses to decide while justification is impossible:
    /// with only a quorum of replies where one correct member holds a
    /// lonely fresh commit, it must not decide an older candidate.
    #[test]
    fn no_premature_stale_decision(t in 1usize..4, ts_star in 1u64..10) {
        let cfg = ClusterConfig::byzantine(t).unwrap();
        let s = cfg.num_objects();
        let mut e = CollectEngine::with_min_rounds(cfg, vec![RegId::WRITER], None, 1);
        // Reply set: t silent (non-repliers), one informed correct object,
        // the rest stale-correct. The engine must NOT decide bottom.
        let informed = 0u32;
        let mut last = CollectStatus::Wait;
        for oid in 0..(s - t) {
            let rep = if oid as u32 == informed {
                Rep::Views { views: vec![(RegId::WRITER, honest_view(ts_star, ts_star))] }
            } else {
                Rep::Views { views: vec![(RegId::WRITER, honest_view(0, 0))] }
            };
            last = e.on_reply(ObjectId(oid as u32), 1, &rep);
            if let CollectStatus::Decided = last {
                let d = &e.decisions()[&RegId::WRITER];
                // Deciding is only sound if the decision is fresh.
                prop_assert!(d.pair.ts >= Timestamp(ts_star));
            }
        }
        // With a lonely fresh commit the round cannot be justified:
        // the engine asks for another round instead of deciding stale.
        prop_assert_ne!(last, CollectStatus::Decided);
        prop_assert_eq!(last, CollectStatus::NextRound);
    }

    /// Auth mode: forged tokens never decide; genuine max always wins.
    #[test]
    fn auth_decisions_require_valid_tokens(
        t in 1usize..4,
        ts_star in 1u64..20,
        forged_ts in 21u64..1000,
    ) {
        use rastor_core::token::AuthKey;
        let key = AuthKey::new(1);
        let wrong = AuthKey::new(2);
        let cfg = ClusterConfig::byzantine_auth(t).unwrap();
        let s = cfg.num_objects();
        let mut e = CollectEngine::auth(cfg, vec![RegId::WRITER], key);
        let genuine_pair = TsVal::new(Timestamp(ts_star), Value::from_u64(1));
        let genuine = Stamped { token: Some(key.mint(&genuine_pair)), pair: genuine_pair.clone() };
        let fake_pair = TsVal::new(Timestamp(forged_ts), Value::from_u64(2));
        let fake = Stamped { token: Some(wrong.mint(&fake_pair)), pair: fake_pair };
        let mut status = CollectStatus::Wait;
        for oid in 0..s {
            let view = if oid < t {
                ObjectView { pw: fake.clone(), w: fake.clone(), hist: vec![fake.clone()] }
            } else {
                ObjectView { pw: genuine.clone(), w: genuine.clone(), hist: vec![genuine.clone()] }
            };
            status = e.on_reply(
                ObjectId(oid as u32),
                1,
                &Rep::Views { views: vec![(RegId::WRITER, view)] },
            );
            if status == CollectStatus::Decided {
                break;
            }
        }
        prop_assert_eq!(status, CollectStatus::Decided);
        prop_assert_eq!(&e.decisions()[&RegId::WRITER].pair, &genuine_pair);
    }
}
