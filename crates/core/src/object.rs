//! The correct (honest) storage-object state machine.
//!
//! An honest object keeps, per logical register:
//!
//! * `pw` — the freshest *pre-written* pair (phase-1 of Byzantine writes);
//! * `w` — the freshest *committed* pair (phase-2, or a crash-model store);
//! * `hist` — every pair it ever adopted, never forgotten.
//!
//! All updates are monotone in timestamp order, so replayed or reordered
//! client messages cannot roll the object's state back. The object replies
//! to each request immediately and never initiates communication, matching
//! the paper's object model.

use crate::msg::{AckKind, ObjectView, Rep, Req, Stamped};
use rastor_common::{ClientId, RegId};
use rastor_sim::ObjectBehavior;
use std::collections::BTreeMap;

/// State of one logical register on one object.
#[derive(Clone, Debug, Default)]
pub struct RegState {
    pw: Stamped,
    w: Stamped,
    hist: BTreeMap<rastor_common::TsVal, Stamped>,
}

impl RegState {
    fn adopt_hist(&mut self, s: &Stamped) {
        #[cfg(any(debug_assertions, feature = "ghost"))]
        assert!(
            !self
                .hist
                .keys()
                .any(|k| k.ts == s.pair.ts && k.val != s.pair.val),
            "ghost: two distinct values share timestamp {:?} in one register \
             (per-writer timestamp uniqueness violated): {:?}",
            s.pair.ts,
            s.pair
        );
        self.hist.entry(s.pair.clone()).or_insert_with(|| s.clone());
    }

    fn pre_write(&mut self, s: Stamped) {
        #[cfg(any(debug_assertions, feature = "ghost"))]
        let (old_pw, old_hist) = (self.pw.pair.clone(), self.hist.len());
        self.adopt_hist(&s);
        if s.pair > self.pw.pair {
            self.pw = s;
        }
        #[cfg(any(debug_assertions, feature = "ghost"))]
        self.ghost_monotone(&old_pw, None, old_hist);
    }

    fn commit(&mut self, s: Stamped) {
        #[cfg(any(debug_assertions, feature = "ghost"))]
        let (old_pw, old_w, old_hist) =
            (self.pw.pair.clone(), self.w.pair.clone(), self.hist.len());
        self.adopt_hist(&s);
        if s.pair > self.pw.pair {
            self.pw = s.clone();
        }
        if s.pair > self.w.pair {
            self.w = s;
        }
        #[cfg(any(debug_assertions, feature = "ghost"))]
        self.ghost_monotone(&old_pw, Some(&old_w), old_hist);
    }

    /// Ghost: no update may roll `pw`/`w` back, shrink the history, or
    /// leave `w` ahead of `pw` (commits also pre-write). Compiled out in
    /// release builds unless the `ghost` feature is on.
    #[cfg(any(debug_assertions, feature = "ghost"))]
    fn ghost_monotone(
        &self,
        old_pw: &rastor_common::TsVal,
        old_w: Option<&rastor_common::TsVal>,
        old_hist: usize,
    ) {
        assert!(self.pw.pair >= *old_pw, "ghost: pw regressed");
        if let Some(w) = old_w {
            assert!(self.w.pair >= *w, "ghost: w regressed");
        }
        assert!(
            self.w.pair <= self.pw.pair,
            "ghost: committed past pre-written"
        );
        assert!(self.hist.len() >= old_hist, "ghost: history shrank");
    }

    /// Render the externally visible view.
    pub fn view(&self) -> ObjectView {
        ObjectView {
            pw: self.pw.clone(),
            w: self.w.clone(),
            hist: self.hist.values().cloned().collect(),
        }
    }

    /// Rebuild register state from a rendered view — the inverse of
    /// [`RegState::view`], used by durability layers to restore a
    /// snapshotted object. Lossless because a view carries the complete
    /// state (`pw`, `w`, full history).
    pub fn from_view(view: &ObjectView) -> RegState {
        RegState {
            pw: view.pw.clone(),
            w: view.w.clone(),
            hist: view
                .hist
                .iter()
                .map(|s| (s.pair.clone(), s.clone()))
                .collect(),
        }
    }
}

/// A correct storage object hosting any number of logical registers.
///
/// The same object type serves every protocol in the crate: the crash-model
/// ABD register uses `Store`/`Collect`, the Byzantine protocols use
/// `PreWrite`/`Commit`/`Collect`, and the regular→atomic transformation
/// multiplexes `R + 1` registers through `RegId` tags.
#[derive(Clone, Debug, Default)]
pub struct HonestObject {
    regs: BTreeMap<RegId, RegState>,
}

impl HonestObject {
    /// A fresh object with every register at `(0, ⊥)`.
    pub fn new() -> HonestObject {
        HonestObject::default()
    }

    /// Apply one request, returning the reply a correct object sends.
    ///
    /// Exposed (in addition to the [`ObjectBehavior`] impl) so that
    /// adversarial wrappers and the lower-bound state-forging machinery can
    /// drive snapshots of honest state.
    pub fn apply(&mut self, req: &Req) -> Rep {
        match req {
            Req::Collect { regs } => Rep::Views {
                views: regs
                    .iter()
                    .map(|r| (*r, self.regs.entry(*r).or_default().view()))
                    .collect(),
            },
            Req::Store { reg, pair } => {
                // Crash-model store: a single-phase commit.
                self.regs.entry(*reg).or_default().commit(pair.clone());
                Rep::Ack {
                    reg: *reg,
                    kind: AckKind::Store,
                }
            }
            Req::PreWrite { reg, pair } => {
                self.regs.entry(*reg).or_default().pre_write(pair.clone());
                Rep::Ack {
                    reg: *reg,
                    kind: AckKind::PreWrite,
                }
            }
            Req::Commit { reg, pair } => {
                self.regs.entry(*reg).or_default().commit(pair.clone());
                Rep::Ack {
                    reg: *reg,
                    kind: AckKind::Commit,
                }
            }
        }
    }

    /// Peek at a register's view without mutating (absent registers read as
    /// initial).
    pub fn view_of(&self, reg: RegId) -> ObjectView {
        self.regs.get(&reg).map(RegState::view).unwrap_or_default()
    }

    /// Number of registers this object has materialized.
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// Export the complete state of every materialized register — the
    /// durability snapshot hook. A view is the *full* register state
    /// (`pw`, `w`, entire history), so the export round-trips through
    /// [`HonestObject::from_export`] losslessly.
    pub fn export_regs(&self) -> Vec<(RegId, ObjectView)> {
        self.regs.iter().map(|(r, s)| (*r, s.view())).collect()
    }

    /// Rebuild an object from an export — the durability recovery hook.
    /// The recovered object vouches for exactly the pairs the exported one
    /// did, with their original timestamps (no rewind, no renumbering).
    pub fn from_export(regs: impl IntoIterator<Item = (RegId, ObjectView)>) -> HonestObject {
        HonestObject {
            regs: regs
                .into_iter()
                .map(|(r, view)| (r, RegState::from_view(&view)))
                .collect(),
        }
    }
}

impl ObjectBehavior<Req, Rep> for HonestObject {
    fn on_request(&mut self, _from: ClientId, req: &Req) -> Option<Rep> {
        Some(self.apply(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rastor_common::{Timestamp, TsVal, Value};

    fn stamped(ts: u64, v: u64) -> Stamped {
        Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(v)))
    }

    #[test]
    fn initial_view_is_bottom() {
        let obj = HonestObject::new();
        let view = obj.view_of(RegId::WRITER);
        assert!(view.pw.pair.is_bottom());
        assert!(view.w.pair.is_bottom());
        assert!(view.hist.is_empty());
    }

    #[test]
    fn prewrite_updates_pw_not_w() {
        let mut obj = HonestObject::new();
        obj.apply(&Req::PreWrite {
            reg: RegId::WRITER,
            pair: stamped(1, 10),
        });
        let view = obj.view_of(RegId::WRITER);
        assert_eq!(view.pw, stamped(1, 10));
        assert!(view.w.pair.is_bottom());
        assert_eq!(view.hist.len(), 1);
    }

    #[test]
    fn commit_updates_both() {
        let mut obj = HonestObject::new();
        obj.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(1, 10),
        });
        let view = obj.view_of(RegId::WRITER);
        assert_eq!(view.pw, stamped(1, 10));
        assert_eq!(view.w, stamped(1, 10));
    }

    #[test]
    fn updates_are_monotone() {
        let mut obj = HonestObject::new();
        obj.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(5, 50),
        });
        // A stale (replayed) commit must not roll back state…
        obj.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(3, 30),
        });
        let view = obj.view_of(RegId::WRITER);
        assert_eq!(view.w, stamped(5, 50));
        // …but it still lands in the history.
        assert!(view.vouches_for(&stamped(3, 30).pair));
    }

    #[test]
    fn history_never_forgets() {
        let mut obj = HonestObject::new();
        for ts in 1..=4 {
            obj.apply(&Req::PreWrite {
                reg: RegId::WRITER,
                pair: stamped(ts, ts * 10),
            });
        }
        let view = obj.view_of(RegId::WRITER);
        assert_eq!(view.hist.len(), 4);
        assert_eq!(view.pw, stamped(4, 40));
        for ts in 1..=4 {
            assert!(view.vouches_for(&stamped(ts, ts * 10).pair));
        }
    }

    #[test]
    fn registers_are_isolated() {
        let mut obj = HonestObject::new();
        obj.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(1, 10),
        });
        obj.apply(&Req::Commit {
            reg: RegId::ReaderReg(0),
            pair: stamped(2, 20),
        });
        assert_eq!(obj.view_of(RegId::WRITER).w, stamped(1, 10));
        assert_eq!(obj.view_of(RegId::ReaderReg(0)).w, stamped(2, 20));
        assert_eq!(obj.view_of(RegId::ReaderReg(1)).w, Stamped::bottom());
    }

    #[test]
    fn collect_reports_requested_registers() {
        let mut obj = HonestObject::new();
        let rep = obj.apply(&Req::Collect {
            regs: vec![RegId::WRITER, RegId::ReaderReg(3)],
        });
        match rep {
            Rep::Views { views } => {
                assert_eq!(views.len(), 2);
                assert_eq!(views[0].0, RegId::WRITER);
                assert_eq!(views[1].0, RegId::ReaderReg(3));
            }
            Rep::Ack { .. } => panic!("collect returns views"),
        }
    }

    #[test]
    fn export_roundtrips_losslessly() {
        let mut obj = HonestObject::new();
        obj.apply(&Req::PreWrite {
            reg: RegId::WRITER,
            pair: stamped(2, 20),
        });
        obj.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(1, 10),
        });
        obj.apply(&Req::Store {
            reg: RegId::ReaderReg(0),
            pair: stamped(3, 30),
        });
        let export = obj.export_regs();
        let rebuilt = HonestObject::from_export(export.clone());
        assert_eq!(rebuilt.export_regs(), export);
        assert_eq!(rebuilt.num_regs(), 2);
        // The rebuilt object keeps vouching for everything, at the
        // original timestamps.
        assert_eq!(rebuilt.view_of(RegId::WRITER).pw, stamped(2, 20));
        assert_eq!(rebuilt.view_of(RegId::WRITER).w, stamped(1, 10));
        assert!(rebuilt
            .view_of(RegId::WRITER)
            .vouches_for(&stamped(1, 10).pair));
        // And it stays monotone from where it left off.
        let mut rebuilt = rebuilt;
        rebuilt.apply(&Req::Commit {
            reg: RegId::WRITER,
            pair: stamped(1, 10),
        });
        assert_eq!(rebuilt.view_of(RegId::WRITER).pw, stamped(2, 20));
    }

    #[test]
    fn store_acks_with_store_kind() {
        let mut obj = HonestObject::new();
        let rep = obj.apply(&Req::Store {
            reg: RegId::WRITER,
            pair: stamped(1, 1),
        });
        assert!(rep.is_ack(RegId::WRITER, AckKind::Store));
    }
}
