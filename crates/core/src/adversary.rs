//! A battery of Byzantine object behaviors.
//!
//! The paper's adversary controls up to `t` *malicious* objects that may
//! behave arbitrarily (silence, lies, equivocation, state forging) but can
//! never forge valid tokens in the secret-value model and never make correct
//! objects misbehave. Each behavior here is an [`ObjectBehavior`]
//! implementation used by the fault-injection tests, the resilience-boundary
//! experiments and the lower-bound run executors.

use crate::msg::{AckKind, Rep, Req, Stamped};
use crate::object::HonestObject;
use rastor_common::{ClientId, RegId, Timestamp, TsVal, Value};
use rastor_sim::ObjectBehavior;
use std::collections::HashMap;

/// Never replies — indistinguishable from a crashed or partitioned object.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentObject;

impl ObjectBehavior<Req, Rep> for SilentObject {
    fn on_request(&mut self, _from: ClientId, _req: &Req) -> Option<Rep> {
        None
    }
}

/// Behaves honestly for the first `live_for` requests, then crashes.
#[derive(Clone, Debug)]
pub struct CrashObject {
    inner: HonestObject,
    live_for: usize,
    served: usize,
}

impl CrashObject {
    /// Honest for `live_for` requests, silent afterwards.
    pub fn new(live_for: usize) -> CrashObject {
        CrashObject {
            inner: HonestObject::new(),
            live_for,
            served: 0,
        }
    }
}

impl ObjectBehavior<Req, Rep> for CrashObject {
    fn on_request(&mut self, from: ClientId, req: &Req) -> Option<Rep> {
        if self.served >= self.live_for {
            return None;
        }
        self.served += 1;
        self.inner.on_request(from, req)
    }
}

/// Acknowledges every write but never stores anything, and reports initial
/// state to every collect — the "amnesiac" adversary. Defeats protocols
/// that trust a single quorum of acks without cross-checking.
#[derive(Clone, Debug, Default)]
pub struct AmnesiacObject;

impl ObjectBehavior<Req, Rep> for AmnesiacObject {
    fn on_request(&mut self, _from: ClientId, req: &Req) -> Option<Rep> {
        Some(match req {
            Req::Collect { regs } => Rep::Views {
                views: regs.iter().map(|r| (*r, Default::default())).collect(),
            },
            Req::Store { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Store,
            },
            Req::PreWrite { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::PreWrite,
            },
            Req::Commit { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Commit,
            },
        })
    }
}

/// Reports a fabricated sky-high pair to every collect (and acks writes
/// without storing). Tests that unauthenticated readers never return a pair
/// lacking t+1 vouchers and that token-model readers reject invalid tokens.
#[derive(Clone, Debug)]
pub struct ForgeHighObject {
    forged: Stamped,
}

impl ForgeHighObject {
    /// Forge the given fabricated pair.
    pub fn new(forged: Stamped) -> ForgeHighObject {
        ForgeHighObject { forged }
    }

    /// A default fabrication: timestamp `u64::MAX/2`, value 0xDEAD.
    pub fn default_forgery() -> ForgeHighObject {
        ForgeHighObject::new(Stamped::plain(TsVal::new(
            Timestamp(u64::MAX / 2),
            Value::from_u64(0xDEAD),
        )))
    }
}

impl ObjectBehavior<Req, Rep> for ForgeHighObject {
    fn on_request(&mut self, _from: ClientId, req: &Req) -> Option<Rep> {
        Some(match req {
            Req::Collect { regs } => Rep::Views {
                views: regs
                    .iter()
                    .map(|r| {
                        (
                            *r,
                            crate::msg::ObjectView {
                                pw: self.forged.clone(),
                                w: self.forged.clone(),
                                hist: vec![self.forged.clone()],
                            },
                        )
                    })
                    .collect(),
            },
            Req::Store { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Store,
            },
            Req::PreWrite { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::PreWrite,
            },
            Req::Commit { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Commit,
            },
        })
    }
}

/// Maintains two honest replicas and routes each client to one of them by
/// client identity — a split-brain equivocator. Writer traffic goes to both
/// (so each side looks plausibly fresh); collects are answered from the side
/// the client is pinned to, except that one "victim" reader side is frozen.
#[derive(Clone, Debug)]
pub struct EquivocatorObject {
    fresh: HonestObject,
    frozen: HonestObject,
    victims: Vec<ClientId>,
    freeze_after: usize,
    writes_seen: usize,
}

impl EquivocatorObject {
    /// Equivocate against the given victims: they see state frozen after
    /// `freeze_after` write-phase messages; everyone else sees fresh state.
    pub fn new(victims: Vec<ClientId>, freeze_after: usize) -> EquivocatorObject {
        EquivocatorObject {
            fresh: HonestObject::new(),
            frozen: HonestObject::new(),
            victims,
            freeze_after,
            writes_seen: 0,
        }
    }
}

impl ObjectBehavior<Req, Rep> for EquivocatorObject {
    fn on_request(&mut self, from: ClientId, req: &Req) -> Option<Rep> {
        match req {
            Req::Collect { .. } => {
                if self.victims.contains(&from) {
                    Some(self.frozen.apply(req))
                } else {
                    Some(self.fresh.apply(req))
                }
            }
            _ => {
                self.writes_seen += 1;
                let rep = self.fresh.apply(req);
                if self.writes_seen <= self.freeze_after {
                    self.frozen.apply(req);
                }
                Some(rep)
            }
        }
    }
}

/// A rule for [`StateForgerObject`]: when `client` sends its `n`-th request
/// (1-based, counted per client) and `n` falls within `[from_nth, to_nth]`,
/// the object answers from the given snapshot instead of its live state.
#[derive(Clone, Debug)]
pub struct ForgeRule {
    /// The client whose requests this rule intercepts.
    pub client: ClientId,
    /// First intercepted request index (1-based, inclusive).
    pub from_nth: u32,
    /// Last intercepted request index (inclusive).
    pub to_nth: u32,
    /// The forged state to answer from (requests are *applied* to the
    /// snapshot too, so multi-round interactions stay coherent).
    pub snapshot: HonestObject,
}

/// The state-forging adversary used by the lower-bound run executors: "all
/// objects in block B are malicious and forge their state to σ before
/// replying to rd_j" (paper, Sections 3–4).
///
/// The object runs an honest replica for its real state, plus per-rule
/// snapshot replicas. Requests matched by a rule are served (and applied)
/// on the rule's snapshot; everything else is served honestly.
#[derive(Clone, Debug, Default)]
pub struct StateForgerObject {
    live: HonestObject,
    rules: Vec<ForgeRule>,
    counts: HashMap<ClientId, u32>,
}

impl StateForgerObject {
    /// Start with honest state and no rules.
    pub fn new() -> StateForgerObject {
        StateForgerObject::default()
    }

    /// Start from a given live state.
    pub fn with_live(live: HonestObject) -> StateForgerObject {
        StateForgerObject {
            live,
            ..Default::default()
        }
    }

    /// Add a forging rule.
    pub fn add_rule(&mut self, rule: ForgeRule) -> &mut Self {
        self.rules.push(rule);
        self
    }
}

impl ObjectBehavior<Req, Rep> for StateForgerObject {
    fn on_request(&mut self, from: ClientId, req: &Req) -> Option<Rep> {
        let n = {
            let c = self.counts.entry(from).or_insert(0);
            *c += 1;
            *c
        };
        for rule in &mut self.rules {
            if rule.client == from && n >= rule.from_nth && n <= rule.to_nth {
                return Some(rule.snapshot.apply(req));
            }
        }
        Some(self.live.apply(req))
    }
}

/// Replays a frozen genuine snapshot: behaves honestly for the first
/// `freeze_after` requests, then keeps answering collects from the state it
/// had at that point (while still acking — but dropping — writes).
///
/// This is the *stale replay* adversary: everything it reports is genuine
/// (valid tokens included, in the secret-value model), just old. Safe
/// protocols must out-vote it via the `t + 1` threshold or token-maximum.
#[derive(Clone, Debug)]
pub struct ReplayObject {
    live: HonestObject,
    frozen: Option<HonestObject>,
    freeze_after: usize,
    served: usize,
}

impl ReplayObject {
    /// Honest for `freeze_after` requests, frozen afterwards.
    pub fn new(freeze_after: usize) -> ReplayObject {
        ReplayObject {
            live: HonestObject::new(),
            frozen: None,
            freeze_after,
            served: 0,
        }
    }
}

impl ObjectBehavior<Req, Rep> for ReplayObject {
    fn on_request(&mut self, _from: ClientId, req: &Req) -> Option<Rep> {
        self.served += 1;
        if self.served <= self.freeze_after {
            let rep = self.live.apply(req);
            if self.served == self.freeze_after {
                self.frozen = Some(self.live.clone());
            }
            return Some(rep);
        }
        let frozen = self.frozen.get_or_insert_with(|| self.live.clone());
        Some(match req {
            Req::Collect { .. } => frozen.apply(req),
            // Ack writes without applying them anywhere live.
            Req::Store { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Store,
            },
            Req::PreWrite { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::PreWrite,
            },
            Req::Commit { reg, .. } => Rep::Ack {
                reg: *reg,
                kind: AckKind::Commit,
            },
        })
    }
}

/// Build an [`HonestObject`] snapshot holding the state after a given write
/// prefix: pre-writes for `prewritten` and commits for `committed`
/// (timestamps 1..=n with value `mk_val(ts)`), as the lower-bound proofs'
/// σ-states prescribe.
pub fn snapshot_after_writes(
    reg: RegId,
    prewritten: u64,
    committed: u64,
    mut mk_val: impl FnMut(u64) -> Value,
) -> HonestObject {
    assert!(committed <= prewritten, "commits lag pre-writes");
    let mut obj = HonestObject::new();
    for ts in 1..=prewritten {
        obj.apply(&Req::PreWrite {
            reg,
            pair: Stamped::plain(TsVal::new(Timestamp(ts), mk_val(ts))),
        });
    }
    for ts in 1..=committed {
        obj.apply(&Req::Commit {
            reg,
            pair: Stamped::plain(TsVal::new(Timestamp(ts), mk_val(ts))),
        });
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect() -> Req {
        Req::Collect {
            regs: vec![RegId::WRITER],
        }
    }

    fn commit(ts: u64, v: u64) -> Req {
        Req::Commit {
            reg: RegId::WRITER,
            pair: Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(v))),
        }
    }

    #[test]
    fn silent_object_says_nothing() {
        let mut o = SilentObject;
        assert!(o.on_request(ClientId::writer(), &collect()).is_none());
    }

    #[test]
    fn crash_object_dies_after_budget() {
        let mut o = CrashObject::new(2);
        assert!(o.on_request(ClientId::writer(), &collect()).is_some());
        assert!(o.on_request(ClientId::writer(), &collect()).is_some());
        assert!(o.on_request(ClientId::writer(), &collect()).is_none());
    }

    #[test]
    fn amnesiac_acks_but_forgets() {
        let mut o = AmnesiacObject;
        let ack = o.on_request(ClientId::writer(), &commit(1, 10)).unwrap();
        assert!(ack.is_ack(RegId::WRITER, AckKind::Commit));
        let rep = o.on_request(ClientId::reader(0), &collect()).unwrap();
        let view = rep.view_of(RegId::WRITER).unwrap();
        assert!(view.w.pair.is_bottom(), "nothing was actually stored");
    }

    #[test]
    fn forge_high_reports_fabrication() {
        let mut o = ForgeHighObject::default_forgery();
        let rep = o.on_request(ClientId::reader(0), &collect()).unwrap();
        let view = rep.view_of(RegId::WRITER).unwrap();
        assert_eq!(view.w.pair.ts, Timestamp(u64::MAX / 2));
    }

    #[test]
    fn equivocator_freezes_victims_view() {
        let victim = ClientId::reader(0);
        let other = ClientId::reader(1);
        let mut o = EquivocatorObject::new(vec![victim], 0);
        o.on_request(ClientId::writer(), &commit(1, 10));
        let vv = o.on_request(victim, &collect()).unwrap();
        let ov = o.on_request(other, &collect()).unwrap();
        assert!(vv.view_of(RegId::WRITER).unwrap().w.pair.is_bottom());
        assert_eq!(ov.view_of(RegId::WRITER).unwrap().w.pair.ts, Timestamp(1));
    }

    #[test]
    fn state_forger_answers_matched_requests_from_snapshot() {
        let snapshot = snapshot_after_writes(RegId::WRITER, 2, 1, Value::from_u64);
        let mut forger = StateForgerObject::new();
        forger.add_rule(ForgeRule {
            client: ClientId::reader(0),
            from_nth: 1,
            to_nth: 1,
            snapshot,
        });
        // Live state sees write 3; the victim's first collect sees σ(pw=2,w=1).
        forger.on_request(ClientId::writer(), &commit(3, 30));
        let rep = forger.on_request(ClientId::reader(0), &collect()).unwrap();
        let view = rep.view_of(RegId::WRITER).unwrap();
        assert_eq!(view.pw.pair.ts, Timestamp(2));
        assert_eq!(view.w.pair.ts, Timestamp(1));
        // Second collect (outside the rule) sees live state.
        let rep2 = forger.on_request(ClientId::reader(0), &collect()).unwrap();
        assert_eq!(rep2.view_of(RegId::WRITER).unwrap().w.pair.ts, Timestamp(3));
        // Other clients always see live state.
        let rep3 = forger.on_request(ClientId::reader(1), &collect()).unwrap();
        assert_eq!(rep3.view_of(RegId::WRITER).unwrap().w.pair.ts, Timestamp(3));
    }

    #[test]
    fn replay_object_freezes_after_budget() {
        let mut o = ReplayObject::new(2);
        o.on_request(ClientId::writer(), &commit(1, 10)); // applied (1st)
        o.on_request(ClientId::writer(), &commit(2, 20)); // applied (2nd) + freeze
        o.on_request(ClientId::writer(), &commit(3, 30)); // acked, dropped
        let rep = o.on_request(ClientId::reader(0), &collect()).unwrap();
        let view = rep.view_of(RegId::WRITER).unwrap();
        assert_eq!(view.w.pair.ts, Timestamp(2), "replays the frozen state");
        assert!(view.vouches_for(&TsVal::new(Timestamp(1), Value::from_u64(10))));
        assert!(!view.vouches_for(&TsVal::new(Timestamp(3), Value::from_u64(30))));
    }

    #[test]
    fn snapshot_builder_shapes_state() {
        let obj = snapshot_after_writes(RegId::WRITER, 3, 2, Value::from_u64);
        let view = obj.view_of(RegId::WRITER);
        assert_eq!(view.pw.pair.ts, Timestamp(3));
        assert_eq!(view.w.pair.ts, Timestamp(2));
        assert_eq!(view.hist.len(), 3);
    }

    #[test]
    #[should_panic(expected = "commits lag pre-writes")]
    fn snapshot_builder_validates() {
        let _ = snapshot_after_writes(RegId::WRITER, 1, 2, Value::from_u64);
    }
}
