//! # rastor-core
//!
//! Robust read/write register emulations from fault-prone storage objects —
//! the storage system of *"The Complexity of Robust Atomic Storage"*
//! (Dobre, Guerraoui, Majuntke, Suri, Vukolić — PODC 2011).
//!
//! ## What's here
//!
//! | Protocol | Model | S | Write | Read | Semantics |
//! |---|---|---|---|---|---|
//! | [`clients::AbdWriteClient`] / [`clients::AbdReadClient`] | crash | 2t+1 | 1 rnd | 2 rnd | atomic |
//! | [`clients::ByzWriteClient`] / [`clients::RegularReadClient`] | Byzantine | 3t+1 | 2 rnd | 2 rnd | regular |
//! | [`clients::RegularReadClient::auth`] | Byzantine + secret values | 3t+1 | 2 rnd | 1 rnd | regular |
//! | [`transform::AtomicReadClient::unauth`] | Byzantine | 3t+1 | 2 rnd | **4 rnd** | **atomic** |
//! | [`transform::AtomicReadClient::auth`] | Byzantine + secret values | 3t+1 | 2 rnd | **3 rnd** | **atomic** |
//! | [`transform::ReadMode::Fast`] (adaptive) | Byzantine | 3t+1 | 2 rnd | 2 rnd uncontended, 4 rnd fallback | atomic |
//! | [`baseline::SafeNoWriteReadClient`] | Byzantine | 3t+1 | 2 rnd | t+1 rnd | safe |
//! | [`baseline::RetryStableReadClient`] | Byzantine | 3t+1 | 2 rnd | unbounded | baseline |
//!
//! The bolded rows are the paper's headline constructions (Section 5),
//! matching its lower bounds: reads from scalable robust atomic storage
//! need 4 rounds (3 with secret values), and those budgets suffice.
//!
//! ## Quick start
//!
//! ```
//! use rastor_core::harness::{Protocol, StorageSystem, Workload};
//! use rastor_common::Value;
//! use rastor_sim::FixedDelay;
//!
//! let mut sys = StorageSystem::new(Protocol::AtomicUnauth, 1, 2)?;
//! let workload = Workload::default()
//!     .with_write(0, Value::from_u64(42))
//!     .with_read(100, 0);
//! let result = sys.run(Box::new(FixedDelay::new(1)), &workload, vec![]);
//! assert!(result.history.check_atomic().is_empty());
//! assert_eq!(result.read_rounds(), vec![4]);
//! # Ok::<(), rastor_common::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod baseline;
pub mod checker;
pub mod clients;
pub mod collect;
pub mod driver;
pub mod harness;
pub mod msg;
pub mod mwmr;
pub mod object;
pub mod token;
pub mod transform;

pub use checker::{History, ReadRec, Violation, WriteRec};
pub use clients::OpOutput;
pub use driver::{drive_batch, BatchOp};
pub use harness::{AdversaryKind, Protocol, RunResult, StorageSystem, Workload};
pub use msg::{AckKind, ObjectView, Rep, Req, Stamped};
pub use object::HonestObject;
pub use token::{AuthKey, Token};
pub use transform::ReadMode;
