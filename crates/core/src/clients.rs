//! Client-side operation automata for the base protocols:
//!
//! * **ABD** (crash model, `S = 2t+1`, the paper's reference \[3\]):
//!   1-round writes, 2-round reads (collect + write-back).
//! * **Byzantine two-phase writes** (`S = 3t+1`, unauthenticated or
//!   secret-value): pre-write then commit, each at an `S − t` quorum —
//!   2 rounds, matching the write lower bound of reference \[1\].
//! * **Byzantine regular reads**: the collect engine of [`crate::collect`]
//!   wrapped as a round client.
//!
//! Each automaton implements [`RoundClient`] and can run on the simulator or
//! the thread runtime unchanged.

use crate::collect::{CollectEngine, CollectStatus};
use crate::msg::{AckKind, Rep, Req, Stamped};
use rastor_common::{ClusterConfig, ObjectId, RegId, TsVal};
use rastor_sim::{ClientAction, RoundClient};
use std::collections::BTreeSet;

/// The unified output of a register operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpOutput {
    /// A write completed, having stored this pair.
    Wrote(TsVal),
    /// A read completed, returning this pair.
    Read(TsVal),
}

impl OpOutput {
    /// The pair carried by the output.
    pub fn pair(&self) -> &TsVal {
        match self {
            OpOutput::Wrote(p) | OpOutput::Read(p) => p,
        }
    }

    /// Whether this is a read output.
    pub fn is_read(&self) -> bool {
        matches!(self, OpOutput::Read(_))
    }

    /// The stored pair, if this is a write output. Spares driver-layer
    /// callers the `unreachable!` match arms when the operation kind is
    /// known from context.
    pub fn into_wrote(self) -> Option<TsVal> {
        match self {
            OpOutput::Wrote(p) => Some(p),
            OpOutput::Read(_) => None,
        }
    }

    /// The returned pair, if this is a read output.
    pub fn into_read(self) -> Option<TsVal> {
        match self {
            OpOutput::Read(p) => Some(p),
            OpOutput::Wrote(_) => None,
        }
    }
}

/// ABD write: a single `Store` round acknowledged by a majority.
#[derive(Debug)]
pub struct AbdWriteClient {
    cfg: ClusterConfig,
    reg: RegId,
    pair: Stamped,
    acks: BTreeSet<ObjectId>,
}

impl AbdWriteClient {
    /// Write `pair` into `reg` under the crash model.
    pub fn new(cfg: ClusterConfig, reg: RegId, pair: Stamped) -> AbdWriteClient {
        AbdWriteClient {
            cfg,
            reg,
            pair,
            acks: BTreeSet::new(),
        }
    }
}

impl RoundClient<Req, Rep> for AbdWriteClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        Req::Store {
            reg: self.reg,
            pair: self.pair.clone(),
        }
    }

    fn on_reply(
        &mut self,
        from: ObjectId,
        _round: u32,
        reply: &Rep,
    ) -> ClientAction<Req, OpOutput> {
        if reply.is_ack(self.reg, AckKind::Store) {
            self.acks.insert(from);
        }
        if self.acks.len() >= self.cfg.quorum() {
            ClientAction::Complete(OpOutput::Wrote(self.pair.pair.clone()))
        } else {
            ClientAction::Wait
        }
    }
}

/// ABD read: collect from a majority, pick the maximum committed pair,
/// write it back to a majority, return it. The write-back round is what
/// upgrades regular to atomic in the crash model (no new/old inversion).
#[derive(Debug)]
pub struct AbdReadClient {
    cfg: ClusterConfig,
    reg: RegId,
    best: Stamped,
    heard: BTreeSet<ObjectId>,
    acks: BTreeSet<ObjectId>,
    writing_back: bool,
}

impl AbdReadClient {
    /// Read `reg` under the crash model.
    pub fn new(cfg: ClusterConfig, reg: RegId) -> AbdReadClient {
        AbdReadClient {
            cfg,
            reg,
            best: Stamped::bottom(),
            heard: BTreeSet::new(),
            acks: BTreeSet::new(),
            writing_back: false,
        }
    }
}

impl RoundClient<Req, Rep> for AbdReadClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        Req::Collect {
            regs: vec![self.reg],
        }
    }

    fn on_reply(
        &mut self,
        from: ObjectId,
        _round: u32,
        reply: &Rep,
    ) -> ClientAction<Req, OpOutput> {
        if !self.writing_back {
            if let Some(view) = reply.view_of(self.reg) {
                self.heard.insert(from);
                if view.w.pair > self.best.pair {
                    self.best = view.w.clone();
                }
            }
            if self.heard.len() >= self.cfg.quorum() {
                self.writing_back = true;
                return ClientAction::NextRound(Req::Store {
                    reg: self.reg,
                    pair: self.best.clone(),
                });
            }
            ClientAction::Wait
        } else {
            if reply.is_ack(self.reg, AckKind::Store) {
                self.acks.insert(from);
            }
            if self.acks.len() >= self.cfg.quorum() {
                ClientAction::Complete(OpOutput::Read(self.best.pair.clone()))
            } else {
                ClientAction::Wait
            }
        }
    }
}

/// Byzantine-model write: `PreWrite` to an `S − t` quorum, then `Commit` to
/// an `S − t` quorum — exactly 2 rounds.
///
/// The pre-write phase is what makes unauthenticated data attributable: any
/// process that later observes `w = ts` at a *correct* object can conclude
/// that `(ts, v)` was adopted by ≥ t+1 correct objects' histories, because a
/// correct object only commits after the writer finished pre-writing at a
/// full quorum.
#[derive(Debug)]
pub struct ByzWriteClient {
    cfg: ClusterConfig,
    reg: RegId,
    pair: Stamped,
    committing: bool,
    acks: BTreeSet<ObjectId>,
}

impl ByzWriteClient {
    /// Write `pair` into `reg` (two-phase).
    pub fn new(cfg: ClusterConfig, reg: RegId, pair: Stamped) -> ByzWriteClient {
        ByzWriteClient {
            cfg,
            reg,
            pair,
            committing: false,
            acks: BTreeSet::new(),
        }
    }
}

impl RoundClient<Req, Rep> for ByzWriteClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        Req::PreWrite {
            reg: self.reg,
            pair: self.pair.clone(),
        }
    }

    fn on_reply(
        &mut self,
        from: ObjectId,
        _round: u32,
        reply: &Rep,
    ) -> ClientAction<Req, OpOutput> {
        let expected = if self.committing {
            AckKind::Commit
        } else {
            AckKind::PreWrite
        };
        if reply.is_ack(self.reg, expected) {
            self.acks.insert(from);
        }
        if self.acks.len() < self.cfg.quorum() {
            return ClientAction::Wait;
        }
        if self.committing {
            ClientAction::Complete(OpOutput::Wrote(self.pair.pair.clone()))
        } else {
            self.committing = true;
            self.acks.clear();
            ClientAction::NextRound(Req::Commit {
                reg: self.reg,
                pair: self.pair.clone(),
            })
        }
    }
}

/// Byzantine regular read over one register: the collect engine wrapped as
/// a round client. Completes without writing (regular registers permit
/// non-writing readers; the *atomic* transformation adds the write-back).
#[derive(Debug)]
pub struct RegularReadClient {
    engine: CollectEngine,
    reg: RegId,
}

impl RegularReadClient {
    /// Unauthenticated regular read of `reg`.
    pub fn unauth(cfg: ClusterConfig, reg: RegId) -> RegularReadClient {
        RegularReadClient {
            engine: CollectEngine::unauth(cfg, vec![reg]),
            reg,
        }
    }

    /// Secret-value regular read of `reg` (single round).
    pub fn auth(cfg: ClusterConfig, reg: RegId, key: crate::token::AuthKey) -> RegularReadClient {
        RegularReadClient {
            engine: CollectEngine::auth(cfg, vec![reg], key),
            reg,
        }
    }

    /// With an explicit minimum round count (benchmarking the fast path).
    pub fn with_min_rounds(
        cfg: ClusterConfig,
        reg: RegId,
        key: Option<crate::token::AuthKey>,
        min_rounds: u32,
    ) -> RegularReadClient {
        RegularReadClient {
            engine: CollectEngine::with_min_rounds(cfg, vec![reg], key, min_rounds),
            reg,
        }
    }
}

impl RoundClient<Req, Rep> for RegularReadClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        self.engine.request()
    }

    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &Rep) -> ClientAction<Req, OpOutput> {
        match self.engine.on_reply(from, round, reply) {
            CollectStatus::Wait => ClientAction::Wait,
            CollectStatus::NextRound => {
                self.engine.begin_round();
                ClientAction::NextRound(self.engine.request())
            }
            CollectStatus::Decided => {
                let out = self.engine.decisions()[&self.reg].pair.clone();
                ClientAction::Complete(OpOutput::Read(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::HonestObject;
    use rastor_common::{ClientId, OpKind, Timestamp, Value};
    use rastor_sim::{ObjectBehavior, Sim, SimConfig};

    fn stamped(ts: u64, v: u64) -> Stamped {
        Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(v)))
    }

    fn sim_with_honest(n: usize) -> Sim<Req, Rep, OpOutput> {
        let mut sim = Sim::new(SimConfig::default());
        for _ in 0..n {
            sim.add_object(Box::new(HonestObject::new()));
        }
        sim
    }

    #[test]
    fn abd_write_then_read_roundtrip() {
        let cfg = ClusterConfig::crash(1).unwrap(); // S = 3
        let mut sim = sim_with_honest(3);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AbdWriteClient::new(cfg, RegId::WRITER, stamped(1, 11))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AbdReadClient::new(cfg, RegId::WRITER)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].stat.rounds.get(), 1, "ABD write is 1 round");
        assert_eq!(done[1].stat.rounds.get(), 2, "ABD read is 2 rounds");
        assert_eq!(done[1].output, OpOutput::Read(stamped(1, 11).pair));
    }

    #[test]
    fn byz_write_is_two_rounds() {
        let cfg = ClusterConfig::byzantine(1).unwrap(); // S = 4
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(1, 7))),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].stat.rounds.get(), 2);
        assert_eq!(done[0].output, OpOutput::Wrote(stamped(1, 7).pair));
    }

    #[test]
    fn regular_read_after_write_returns_it() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(1, 42))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(RegularReadClient::unauth(cfg, RegId::WRITER)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].output, OpOutput::Read(stamped(1, 42).pair));
        assert_eq!(
            done[1].stat.rounds.get(),
            2,
            "contention-free read is 2 rounds"
        );
    }

    #[test]
    fn regular_read_with_no_write_returns_bottom() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(RegularReadClient::unauth(cfg, RegId::WRITER)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output, OpOutput::Read(TsVal::bottom()));
    }

    #[test]
    fn auth_read_is_single_round() {
        let key = crate::token::AuthKey::new(3);
        let cfg = ClusterConfig::byzantine_auth(1).unwrap();
        let pair = TsVal::new(Timestamp(1), Value::from_u64(5));
        let signed = Stamped {
            token: Some(key.mint(&pair)),
            pair: pair.clone(),
        };
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(ByzWriteClient::new(cfg, RegId::WRITER, signed)),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(RegularReadClient::auth(cfg, RegId::WRITER, key)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done[1].stat.rounds.get(), 1, "token-model read is 1 round");
        assert_eq!(done[1].output, OpOutput::Read(pair));
    }

    #[test]
    fn byz_write_survives_silent_minority() {
        struct Silent;
        impl ObjectBehavior<Req, Rep> for Silent {
            fn on_request(&mut self, _from: ClientId, _req: &Req) -> Option<Rep> {
                None
            }
        }
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(3);
        sim.add_object(Box::new(Silent));
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(1, 1))),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1, "S−t = 3 correct objects suffice");
    }

    #[test]
    fn op_output_accessors() {
        let p = stamped(2, 9).pair;
        assert!(OpOutput::Read(p.clone()).is_read());
        assert!(!OpOutput::Wrote(p.clone()).is_read());
        assert_eq!(OpOutput::Wrote(p.clone()).pair(), &p);
    }
}
