//! The wire protocol between clients and storage objects.
//!
//! One unified request/reply vocabulary serves every protocol in the crate:
//!
//! * [`Req::Collect`] — read an object's view of one or more logical
//!   registers (all read rounds);
//! * [`Req::Store`] — single-phase store, used by the crash-model ABD
//!   protocol (write and read write-back);
//! * [`Req::PreWrite`] / [`Req::Commit`] — the two write phases of the
//!   Byzantine-model protocols. Observing a committed timestamp at one
//!   correct object implies its pre-write completed at a full quorum, which
//!   is what makes unauthenticated data attributable.
//!
//! Multiplexing several *logical* registers (the `R + 1` registers of the
//! regular→atomic transformation) over the same physical objects happens via
//! [`RegId`] tags; a single [`Req::Collect`] may name many registers so the
//! transformation's parallel reads cost one physical round.

use crate::token::Token;
use rastor_common::{RegId, TsVal};

/// A timestamped pair optionally accompanied by an authentication token
/// (secret-value model only; `None` in the unauthenticated model).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Stamped {
    /// The timestamped value pair.
    pub pair: TsVal,
    /// The writer's token over the pair, if the run uses the secret-value
    /// model.
    pub token: Option<Token>,
}

impl Stamped {
    /// An unauthenticated stamped pair.
    pub fn plain(pair: TsVal) -> Stamped {
        Stamped { pair, token: None }
    }

    /// The initial `(0, ⊥)` entry.
    pub fn bottom() -> Stamped {
        Stamped::plain(TsVal::bottom())
    }
}

/// Client → object requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Req {
    /// Read the object's views of the named logical registers.
    Collect {
        /// Registers to report on.
        regs: Vec<RegId>,
    },
    /// Single-phase store (crash model): adopt the pair if fresher.
    Store {
        /// Target register.
        reg: RegId,
        /// Pair to adopt.
        pair: Stamped,
    },
    /// Byzantine-model write phase 1: record the pair as pre-written.
    PreWrite {
        /// Target register.
        reg: RegId,
        /// Pair to pre-write.
        pair: Stamped,
    },
    /// Byzantine-model write phase 2: commit the pair.
    Commit {
        /// Target register.
        reg: RegId,
        /// Pair to commit.
        pair: Stamped,
    },
}

/// Kind of acknowledged request (so clients can match acks to phases).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AckKind {
    /// Ack of a [`Req::Store`].
    Store,
    /// Ack of a [`Req::PreWrite`].
    PreWrite,
    /// Ack of a [`Req::Commit`].
    Commit,
}

/// An object's view of one logical register, as returned to a collect.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObjectView {
    /// The freshest pre-written pair.
    pub pw: Stamped,
    /// The freshest committed pair.
    pub w: Stamped,
    /// Every pair the object ever adopted for this register (pre-writes,
    /// commits and stores), in ascending order. Histories are monotone: a
    /// correct object never un-learns a pair, which defeats the
    /// "overwritten evidence" problem in multi-round collects.
    pub hist: Vec<Stamped>,
}

impl ObjectView {
    /// Whether `pair` occurs anywhere in this view (pw, w, or history).
    pub fn vouches_for(&self, pair: &TsVal) -> bool {
        self.pw.pair == *pair || self.w.pair == *pair || self.hist.iter().any(|s| s.pair == *pair)
    }

    /// All distinct pairs in this view.
    pub fn pairs(&self) -> Vec<&Stamped> {
        let mut out: Vec<&Stamped> = self.hist.iter().collect();
        for extra in [&self.pw, &self.w] {
            if !out.iter().any(|s| **s == *extra) {
                out.push(extra);
            }
        }
        out
    }
}

/// Object → client replies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rep {
    /// Reply to [`Req::Collect`]: a view per requested register.
    Views {
        /// `(register, view)` pairs, in request order.
        views: Vec<(RegId, ObjectView)>,
    },
    /// Acknowledgement of a store/pre-write/commit.
    Ack {
        /// The register acknowledged.
        reg: RegId,
        /// Which phase was acknowledged.
        kind: AckKind,
    },
}

impl Rep {
    /// Extract the view of one register from a `Views` reply.
    pub fn view_of(&self, reg: RegId) -> Option<&ObjectView> {
        match self {
            Rep::Views { views } => views.iter().find(|(r, _)| *r == reg).map(|(_, v)| v),
            Rep::Ack { .. } => None,
        }
    }

    /// Whether this is an ack of the given register and phase.
    pub fn is_ack(&self, reg: RegId, kind: AckKind) -> bool {
        matches!(self, Rep::Ack { reg: r, kind: k } if *r == reg && *k == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rastor_common::{Timestamp, Value};

    fn pair(ts: u64, v: u64) -> TsVal {
        TsVal::new(Timestamp(ts), Value::from_u64(v))
    }

    #[test]
    fn stamped_bottom_is_plain() {
        let b = Stamped::bottom();
        assert!(b.pair.is_bottom());
        assert!(b.token.is_none());
    }

    #[test]
    fn view_vouching_covers_all_fields() {
        let view = ObjectView {
            pw: Stamped::plain(pair(3, 30)),
            w: Stamped::plain(pair(2, 20)),
            hist: vec![Stamped::plain(pair(1, 10))],
        };
        assert!(view.vouches_for(&pair(1, 10)));
        assert!(view.vouches_for(&pair(2, 20)));
        assert!(view.vouches_for(&pair(3, 30)));
        assert!(!view.vouches_for(&pair(4, 40)));
        // Same timestamp, different value: no vouch (forgery detection).
        assert!(!view.vouches_for(&pair(2, 99)));
    }

    #[test]
    fn view_pairs_deduplicates() {
        let s = Stamped::plain(pair(1, 10));
        let view = ObjectView {
            pw: s.clone(),
            w: s.clone(),
            hist: vec![s.clone()],
        };
        assert_eq!(view.pairs().len(), 1);
    }

    #[test]
    fn rep_view_extraction() {
        let rep = Rep::Views {
            views: vec![(RegId::WRITER, ObjectView::default())],
        };
        assert!(rep.view_of(RegId::WRITER).is_some());
        assert!(rep.view_of(RegId::ReaderReg(0)).is_none());
        assert!(!rep.is_ack(RegId::WRITER, AckKind::Store));
    }

    #[test]
    fn rep_ack_matching() {
        let rep = Rep::Ack {
            reg: RegId::WRITER,
            kind: AckKind::PreWrite,
        };
        assert!(rep.is_ack(RegId::WRITER, AckKind::PreWrite));
        assert!(!rep.is_ack(RegId::WRITER, AckKind::Commit));
        assert!(!rep.is_ack(RegId::ReaderReg(1), AckKind::PreWrite));
        assert!(rep.view_of(RegId::WRITER).is_none());
    }
}
