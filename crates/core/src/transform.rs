//! The regular→atomic transformation (paper, Section 5): the headline
//! construction achieving **2-round writes and 4-round reads** (3-round
//! reads in the secret-value model) — exactly matching the paper's lower
//! bounds.
//!
//! The transformation employs `R + 1` SWMR *regular* registers multiplexed
//! over the same `3t + 1` physical objects: one register owned by the
//! writer, plus one per reader into which that reader writes back the value
//! it read (footnote 6 of the paper, after \[4, 20\]).
//!
//! * **write(v)** — a two-phase Byzantine write into the writer's register:
//!   **2 rounds**.
//! * **read()** by reader `i` — two phases:
//!   1. *Collect*: regular-read all `R + 1` registers **in parallel** (one
//!      physical collect round serves every logical register, so this costs
//!      the regular read's 2 rounds — 1 with tokens);
//!   2. *Write-back*: two-phase-write the maximum pair found into the
//!      reader's own register: 2 rounds.
//!
//!   Total: **4 rounds** unauthenticated, **3 rounds** with secret values.
//!
//! ### Why this is atomic
//!
//! Regularity of the writer's register gives properties (1)–(3). For
//! property (4) (no new/old inversion): suppose read `rd1` by reader `i`
//! returns pair `p` and completes before read `rd2` starts. Before
//! completing, `rd1` finished a complete regular write of `p` into register
//! `reg[r_i]`. `rd2` regular-reads `reg[r_i]` and therefore obtains some
//! pair ≥ `p` from it (regularity property 2 applied to that register), so
//! `rd2`'s maximum is ≥ `p`.

use crate::collect::{CollectEngine, CollectStatus};
use crate::msg::{AckKind, Rep, Req, Stamped};
use crate::token::AuthKey;
use rastor_common::{ClusterConfig, ObjectId, RegId, TsVal};
use rastor_sim::{ClientAction, RoundClient};
use std::collections::BTreeSet;

pub use crate::clients::ByzWriteClient as AtomicWriteClient;

use crate::clients::OpOutput;

#[derive(Debug)]
enum Phase {
    Collect,
    PreWriteBack,
    CommitBack,
}

/// How an [`AtomicReadClient`] terminates its collect phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReadMode {
    /// Always write back — the paper's unconditional 4-round protocol
    /// (3 rounds with secret values).
    #[default]
    Slow,
    /// Adaptive fast path: complete right after the collect phase (2
    /// rounds) when the decided pair carries a fast-path certificate
    /// ([`CollectEngine::fast_confirmed`] — a full write quorum committed
    /// it in one register and nobody claims anything newer), falling back
    /// to the full write-back under contention, suspicion, or Byzantine
    /// skew. Guaranteed 2-round reads are impossible at `S ≤ 4t` (paper,
    /// Theorem 2), which is why the fast path must be conditional.
    Fast,
    /// Fast path with the confirmation certificate check skipped — a
    /// deliberately unsound test hook used to prove the schedule explorer
    /// catches the resulting atomicity violations. Never deploy this.
    UnsoundFast,
}

/// The transformation's read automaton for reader `i`.
///
/// ```
/// use rastor_common::{ClusterConfig, RegId};
/// use rastor_core::transform::AtomicReadClient;
///
/// let cfg = ClusterConfig::byzantine(1)?;
/// // Reader 0 of a 2-reader deployment, unauthenticated model:
/// let _client = AtomicReadClient::unauth(cfg, 0, 2);
/// # Ok::<(), rastor_common::Error>(())
/// ```
#[derive(Debug)]
pub struct AtomicReadClient {
    cfg: ClusterConfig,
    own_reg: RegId,
    engine: CollectEngine,
    phase: Phase,
    mode: ReadMode,
    chosen: Stamped,
    acks: BTreeSet<ObjectId>,
}

impl AtomicReadClient {
    /// Unauthenticated-model read by reader `reader` out of `num_readers`.
    /// Costs 4 rounds in contention-free runs.
    pub fn unauth(cfg: ClusterConfig, reader: u32, num_readers: u32) -> AtomicReadClient {
        let regs = RegId::transformation_set(num_readers);
        AtomicReadClient {
            cfg,
            own_reg: RegId::ReaderReg(reader),
            engine: CollectEngine::unauth(cfg, regs),
            phase: Phase::Collect,
            mode: ReadMode::Slow,
            chosen: Stamped::bottom(),
            acks: BTreeSet::new(),
        }
    }

    /// Secret-value-model read: 3 rounds.
    pub fn auth(
        cfg: ClusterConfig,
        reader: u32,
        num_readers: u32,
        key: AuthKey,
    ) -> AtomicReadClient {
        let regs = RegId::transformation_set(num_readers);
        AtomicReadClient {
            cfg,
            own_reg: RegId::ReaderReg(reader),
            engine: CollectEngine::auth(cfg, regs, key),
            phase: Phase::Collect,
            mode: ReadMode::Slow,
            chosen: Stamped::bottom(),
            acks: BTreeSet::new(),
        }
    }

    /// A read over an explicit register set (used when several logical
    /// SWMR registers — e.g. one group per key of a key-value store — are
    /// multiplexed over the same objects). `own_reg` must be the invoking
    /// reader's write-back register and a member of `regs`.
    pub fn with_regs(cfg: ClusterConfig, own_reg: RegId, regs: Vec<RegId>) -> AtomicReadClient {
        assert!(regs.contains(&own_reg), "own register must be collected");
        AtomicReadClient {
            cfg,
            own_reg,
            engine: CollectEngine::unauth(cfg, regs),
            phase: Phase::Collect,
            mode: ReadMode::Slow,
            chosen: Stamped::bottom(),
            acks: BTreeSet::new(),
        }
    }

    /// Select the read's termination mode (default: [`ReadMode::Slow`]).
    #[must_use]
    pub fn with_mode(mut self, mode: ReadMode) -> AtomicReadClient {
        self.mode = mode;
        self
    }
}

impl RoundClient<Req, Rep> for AtomicReadClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        self.engine.request()
    }

    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &Rep) -> ClientAction<Req, OpOutput> {
        match self.phase {
            Phase::Collect => match self.engine.on_reply(from, round, reply) {
                CollectStatus::Wait => ClientAction::Wait,
                CollectStatus::NextRound => {
                    self.engine.begin_round();
                    ClientAction::NextRound(self.engine.request())
                }
                CollectStatus::Decided => {
                    self.chosen = self
                        .engine
                        .max_decision()
                        .expect("decided engines have decisions");
                    let fast = match self.mode {
                        ReadMode::Slow => false,
                        ReadMode::Fast => self.engine.fast_confirmed(&self.chosen),
                        ReadMode::UnsoundFast => true,
                    };
                    if fast {
                        // Fast path: the certificate (or the unsound hook)
                        // lets the read return without writing back.
                        #[cfg(any(debug_assertions, feature = "ghost"))]
                        if self.mode == ReadMode::Fast {
                            assert!(
                                self.engine.fast_confirmed(&self.chosen),
                                "ghost: fast completion without a certificate: {:?}",
                                self.chosen
                            );
                        }
                        return ClientAction::Complete(OpOutput::Read(self.chosen.pair.clone()));
                    }
                    self.phase = Phase::PreWriteBack;
                    ClientAction::NextRound(Req::PreWrite {
                        reg: self.own_reg,
                        pair: self.chosen.clone(),
                    })
                }
            },
            Phase::PreWriteBack => {
                if reply.is_ack(self.own_reg, AckKind::PreWrite) {
                    self.acks.insert(from);
                }
                if self.acks.len() >= self.cfg.quorum() {
                    self.phase = Phase::CommitBack;
                    self.acks.clear();
                    ClientAction::NextRound(Req::Commit {
                        reg: self.own_reg,
                        pair: self.chosen.clone(),
                    })
                } else {
                    ClientAction::Wait
                }
            }
            Phase::CommitBack => {
                if reply.is_ack(self.own_reg, AckKind::Commit) {
                    self.acks.insert(from);
                }
                if self.acks.len() >= self.cfg.quorum() {
                    ClientAction::Complete(OpOutput::Read(self.chosen.pair.clone()))
                } else {
                    ClientAction::Wait
                }
            }
        }
    }
}

/// Convenience: the pair a write client should store for timestamp `ts` and
/// value `v`, minting a token when a key is supplied.
pub fn make_stamped(
    ts: rastor_common::Timestamp,
    val: rastor_common::Value,
    key: Option<&AuthKey>,
) -> Stamped {
    let pair = TsVal::new(ts, val);
    Stamped {
        token: key.map(|k| k.mint(&pair)),
        pair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::HonestObject;
    use rastor_common::{ClientId, OpKind, Timestamp, Value};
    use rastor_sim::{Sim, SimConfig};

    fn sim_with_honest(n: usize) -> Sim<Req, Rep, OpOutput> {
        let mut sim = Sim::new(SimConfig::default());
        for _ in 0..n {
            sim.add_object(Box::new(HonestObject::new()));
        }
        sim
    }

    fn stamped(ts: u64, v: u64) -> Stamped {
        make_stamped(Timestamp(ts), Value::from_u64(v), None)
    }

    #[test]
    fn unauth_read_is_four_rounds_contention_free() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AtomicWriteClient::new(cfg, RegId::WRITER, stamped(1, 10))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 0, 2)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].stat.rounds.get(), 2, "write: 2 rounds");
        assert_eq!(
            done[1].stat.rounds.get(),
            4,
            "read: 2 collect + 2 write-back"
        );
        assert_eq!(done[1].output, OpOutput::Read(stamped(1, 10).pair));
    }

    #[test]
    fn auth_read_is_three_rounds() {
        let key = AuthKey::new(11);
        let cfg = ClusterConfig::byzantine_auth(1).unwrap();
        let pair = make_stamped(Timestamp(1), Value::from_u64(3), Some(&key));
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AtomicWriteClient::new(cfg, RegId::WRITER, pair.clone())),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AtomicReadClient::auth(cfg, 0, 2, key)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(
            done[1].stat.rounds.get(),
            3,
            "read: 1 collect + 2 write-back"
        );
        assert_eq!(done[1].output, OpOutput::Read(pair.pair));
    }

    #[test]
    fn read_with_no_write_returns_bottom_and_still_writes_back() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::reader(1),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 1, 2)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output, OpOutput::Read(TsVal::bottom()));
        assert_eq!(done[0].stat.rounds.get(), 4);
    }

    #[test]
    fn sequential_readers_never_invert() {
        // rd1 returns the write; rd2 (a different reader, after rd1) must
        // also return it even though the writer's register might look stale
        // to it — it learns the value from rd1's write-back register.
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AtomicWriteClient::new(cfg, RegId::WRITER, stamped(1, 77))),
        );
        sim.invoke_at(
            50,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 0, 2)),
        );
        sim.invoke_at(
            200,
            ClientId::reader(1),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 1, 2)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 3);
        let r0 = done
            .iter()
            .find(|c| c.client == ClientId::reader(0))
            .unwrap();
        let r1 = done
            .iter()
            .find(|c| c.client == ClientId::reader(1))
            .unwrap();
        let p0 = match &r0.output {
            OpOutput::Read(p) => p.clone(),
            _ => panic!(),
        };
        let p1 = match &r1.output {
            OpOutput::Read(p) => p.clone(),
            _ => panic!(),
        };
        assert!(r0.stat.completed_at <= r1.stat.invoked_at);
        assert!(p1 >= p0, "no new/old inversion");
    }

    #[test]
    fn fast_read_completes_in_two_rounds_when_quiescent() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AtomicWriteClient::new(cfg, RegId::WRITER, stamped(1, 10))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 0, 2).with_mode(ReadMode::Fast)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 2);
        assert_eq!(
            done[1].stat.rounds.get(),
            2,
            "uncontended fast read: collect only"
        );
        assert_eq!(done[1].output, OpOutput::Read(stamped(1, 10).pair));
    }

    #[test]
    fn fast_read_falls_back_when_commit_is_in_flight() {
        use rastor_sim::control::Rule;
        use rastor_sim::ScriptedController;
        let cfg = ClusterConfig::byzantine(1).unwrap();
        // Hold the writer's commit round in transit: every object has
        // pre-written the pair but none committed it — the decided pair has
        // zero commit confirmers, so the fast path must write back.
        let ctl = ScriptedController::new()
            .with_rule(Rule::slow_all(100_000).client(ClientId::writer()).round(2));
        let mut sim: Sim<Req, Rep, OpOutput> =
            Sim::with_controller(SimConfig::default(), Box::new(ctl));
        for _ in 0..4 {
            sim.add_object(Box::new(HonestObject::new()));
        }
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(AtomicWriteClient::new(cfg, RegId::WRITER, stamped(1, 10))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 0, 2).with_mode(ReadMode::Fast)),
        );
        let done = sim.run_to_quiescence();
        let read = done.iter().find(|c| c.output.is_read()).unwrap();
        assert_eq!(
            read.stat.rounds.get(),
            4,
            "contended fast read falls back to the full protocol"
        );
        assert_eq!(read.output, OpOutput::Read(stamped(1, 10).pair));
    }

    #[test]
    fn fast_bottom_read_skips_the_write_back() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::reader(1),
            OpKind::Read,
            Box::new(AtomicReadClient::unauth(cfg, 1, 2).with_mode(ReadMode::Fast)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done[0].output, OpOutput::Read(TsVal::bottom()));
        assert_eq!(done[0].stat.rounds.get(), 2, "nothing claimed: fast ⊥");
    }

    #[test]
    fn make_stamped_mints_token_only_with_key() {
        let key = AuthKey::new(4);
        let plain = make_stamped(Timestamp(1), Value::from_u64(1), None);
        assert!(plain.token.is_none());
        let signed = make_stamped(Timestamp(1), Value::from_u64(1), Some(&key));
        assert!(key.verify(&signed.pair, signed.token.unwrap()));
    }
}
