//! Simulated secret-value authentication (the model of the paper's
//! reference \[8\]).
//!
//! In the secret-value model the adversary cannot fabricate data that passes
//! the writer's authentication check. We model this with a keyed token: the
//! writer holds an [`AuthKey`] and mints a [`Token`] per timestamped pair;
//! readers holding the same key can verify it. A Byzantine object can
//! *replay* genuine `(pair, token)` combinations it has seen (harmless: the
//! pair is genuine), but it cannot mint a valid token for a pair the writer
//! never produced — our adversary implementations have no access to the key,
//! and the mixing function makes accidental collisions vanishingly unlikely
//! at simulation scale.
//!
//! This is deliberately *not* cryptography; it is a faithful simulation of
//! the model's power, per the substitution rules in DESIGN.md.

use rastor_common::rng::splitmix64;
use rastor_common::TsVal;
use std::fmt;

/// An unforgeable-by-assumption token over a timestamped pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(u64);

impl Token {
    /// The raw token bits, for wire codecs that must carry tokens across a
    /// network verbatim.
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Reconstruct a token from its wire representation. This grants no
    /// forging power: a fabricated bit pattern still fails
    /// [`AuthKey::verify`] for any pair the writer never authenticated.
    pub fn from_bits(bits: u64) -> Token {
        Token(bits)
    }
}

/// The writer's secret key (shared with readers for verification, never
/// with object behaviors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuthKey(u64);

fn mix_pair(key: u64, pair: &TsVal) -> u64 {
    let mut acc = splitmix64(key ^ pair.ts.0);
    for chunk in pair.val.as_bytes().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix64(acc ^ u64::from_le_bytes(buf));
    }
    acc
}

impl AuthKey {
    /// Derive a key from a seed (one per writer per run).
    pub fn new(seed: u64) -> AuthKey {
        AuthKey(splitmix64(seed ^ 0xA5A5_5A5A_DEAD_BEEF))
    }

    /// Mint the token authenticating `pair`.
    pub fn mint(&self, pair: &TsVal) -> Token {
        Token(mix_pair(self.0, pair))
    }

    /// Verify that `token` authenticates `pair`.
    pub fn verify(&self, pair: &TsVal, token: Token) -> bool {
        self.mint(pair) == token
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok:{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rastor_common::{Timestamp, Value};

    fn pair(ts: u64, v: u64) -> TsVal {
        TsVal::new(Timestamp(ts), Value::from_u64(v))
    }

    #[test]
    fn mint_verify_roundtrip() {
        let key = AuthKey::new(7);
        let p = pair(3, 42);
        let tok = key.mint(&p);
        assert!(key.verify(&p, tok));
    }

    #[test]
    fn token_binds_timestamp_and_value() {
        let key = AuthKey::new(7);
        let tok = key.mint(&pair(3, 42));
        assert!(
            !key.verify(&pair(4, 42), tok),
            "different ts must not verify"
        );
        assert!(
            !key.verify(&pair(3, 43), tok),
            "different value must not verify"
        );
    }

    #[test]
    fn bits_roundtrip_preserves_verification() {
        let key = AuthKey::new(7);
        let p = pair(5, 99);
        let tok = Token::from_bits(key.mint(&p).to_bits());
        assert!(key.verify(&p, tok));
        // Fabricated bits verify nothing the writer never minted.
        assert!(!key.verify(&p, Token::from_bits(tok.to_bits() ^ 1)));
    }

    #[test]
    fn different_keys_disagree() {
        let a = AuthKey::new(1);
        let b = AuthKey::new(2);
        let p = pair(1, 1);
        assert_ne!(a.mint(&p), b.mint(&p));
        assert!(!b.verify(&p, a.mint(&p)));
    }

    #[test]
    fn tokens_are_spread() {
        // No collisions among a few thousand minted tokens (sanity, not
        // security).
        let key = AuthKey::new(99);
        let mut seen = std::collections::HashSet::new();
        for ts in 0..2000u64 {
            assert!(seen.insert(key.mint(&pair(ts, ts * 7))));
        }
    }

    #[test]
    fn long_values_hash_all_bytes() {
        let key = AuthKey::new(5);
        let a = TsVal::new(Timestamp(1), Value::from_bytes(vec![0u8; 32]));
        let mut bytes = vec![0u8; 32];
        bytes[31] = 1; // differs only in the last byte
        let b = TsVal::new(Timestamp(1), Value::from_bytes(bytes));
        assert_ne!(key.mint(&a), key.mint(&b));
    }
}
