//! The collect engine: the read-side decision core shared by every
//! Byzantine-model protocol in this crate.
//!
//! ## The unauthenticated decision rule
//!
//! A read collects [`ObjectView`]s and must pick a pair `(ts, v)` that is
//! simultaneously
//!
//! 1. **genuine** — actually produced by the writer, never forged; and
//! 2. **fresh** — at least as new as the last write that completed before
//!    the read was invoked (regularity).
//!
//! Without data authentication, a single report proves nothing (any one
//! object may be malicious), so both properties rest on counting:
//!
//! * **Authenticity** (`occ`): a pair vouched for by ≥ t+1 distinct objects
//!   has at least one correct voucher, and correct objects only ever adopt
//!   pairs the writer (or a reader writing back a genuine pair) produced.
//! * **Justifiability** (the paper's round-termination condition, Def. 1):
//!   a candidate `p` may be returned only when
//!   `#non-repliers + #repliers whose committed timestamp exceeds p ≤ t`.
//!   Rationale: the two-phase write guarantees that by the time `write(ts*)`
//!   completes, ≥ t+1 *correct* objects hold `w ≥ ts*` forever. If `p` were
//!   older than the last complete write, each of those t+1 objects would be
//!   either missing from the reply set or a higher-claimer, exceeding the
//!   fault budget — so the predicate can only fire for fresh candidates.
//!   Conversely the predicate eventually fires (wait-freedom): once every
//!   correct object has replied in a round that started after a claimed
//!   commit, the claimed pair has ≥ t+1 history vouchers (histories are
//!   monotone), ratcheting the candidate upward; only genuinely concurrent
//!   writes can defer the decision, and only by one round each.
//!
//! The engine therefore decides in 2 collect rounds in contention-free runs
//! (`min_rounds` defaults to 2, matching the worst-case round structure of
//! the paper's reference \[15\]) and in `2 + O(#interfering writes)` rounds
//! under write contention — the documented deviation in DESIGN.md.
//!
//! ## The authenticated (secret-value) rule
//!
//! With unforgeable tokens, authenticity is free: the maximum *valid* pair
//! across any `S − t` reply set already includes a report from at least one
//! correct member of the last complete write's commit quorum, so one round
//! suffices (`min_rounds` = 1) — this is what buys the paper's 3-round
//! atomic reads in the secret-value model.

use crate::msg::{ObjectView, Rep, Req, Stamped};
use crate::token::AuthKey;
use rastor_common::{ClusterConfig, ObjectId, RegId, TsVal};
use std::collections::{BTreeMap, BTreeSet};

/// Progress report from [`CollectEngine::on_reply`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectStatus {
    /// Keep waiting for more replies in the current round.
    Wait,
    /// The current round is exhausted without a decision: broadcast the
    /// next collect round.
    NextRound,
    /// Every register has decided; results are available via
    /// [`CollectEngine::decisions`].
    Decided,
}

/// Read-side collect state over one or more logical registers.
///
/// Feed it every reply of every collect round; it tracks the latest view
/// per object, evaluates the decision rule after each reply, and reports
/// when to start another round (quorum heard, nothing decidable yet).
#[derive(Clone, Debug)]
pub struct CollectEngine {
    cfg: ClusterConfig,
    regs: Vec<RegId>,
    auth: Option<AuthKey>,
    min_rounds: u32,
    round: u32,
    views: BTreeMap<ObjectId, BTreeMap<RegId, ObjectView>>,
    round_repliers: BTreeSet<ObjectId>,
    decisions: BTreeMap<RegId, Stamped>,
}

impl CollectEngine {
    /// Engine for the unauthenticated Byzantine model (decides no earlier
    /// than round 2, per the worst-case round structure of \[15\]).
    pub fn unauth(cfg: ClusterConfig, regs: Vec<RegId>) -> CollectEngine {
        CollectEngine::with_min_rounds(cfg, regs, None, 2)
    }

    /// Engine for the secret-value model: single-round reads.
    pub fn auth(cfg: ClusterConfig, regs: Vec<RegId>, key: AuthKey) -> CollectEngine {
        CollectEngine::with_min_rounds(cfg, regs, Some(key), 1)
    }

    /// Fully parameterised constructor (exposed for benchmarks exploring
    /// the fast-path/fidelity trade-off).
    pub fn with_min_rounds(
        cfg: ClusterConfig,
        regs: Vec<RegId>,
        auth: Option<AuthKey>,
        min_rounds: u32,
    ) -> CollectEngine {
        assert!(!regs.is_empty(), "collect over no registers");
        CollectEngine {
            cfg,
            regs,
            auth,
            min_rounds: min_rounds.max(1),
            round: 1,
            views: BTreeMap::new(),
            round_repliers: BTreeSet::new(),
            decisions: BTreeMap::new(),
        }
    }

    /// The collect request to broadcast (same for every round).
    pub fn request(&self) -> Req {
        Req::Collect {
            regs: self.regs.clone(),
        }
    }

    /// Number of collect rounds issued so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Per-register decisions (complete once `Decided` is returned).
    pub fn decisions(&self) -> &BTreeMap<RegId, Stamped> {
        &self.decisions
    }

    /// The maximum decided pair across all registers (the transformation's
    /// return-value selection).
    pub fn max_decision(&self) -> Option<Stamped> {
        self.decisions
            .values()
            .max_by(|a, b| a.pair.cmp(&b.pair))
            .cloned()
    }

    /// Must be called when the enclosing client starts the next collect
    /// round (after receiving [`CollectStatus::NextRound`]).
    pub fn begin_round(&mut self) {
        self.round += 1;
        self.round_repliers.clear();
    }

    /// Ingest one reply (from any round — late replies still carry
    /// information; the latest view per object wins).
    pub fn on_reply(&mut self, from: ObjectId, round: u32, rep: &Rep) -> CollectStatus {
        if let Rep::Views { views } = rep {
            let entry = self.views.entry(from).or_default();
            for (reg, view) in views {
                if self.regs.contains(reg) {
                    entry.insert(*reg, view.clone());
                }
            }
            if round == self.round {
                self.round_repliers.insert(from);
            }
        } else {
            return CollectStatus::Wait; // stray ack: ignore
        }
        self.evaluate()
    }

    fn evaluate(&mut self) -> CollectStatus {
        if self.round >= self.min_rounds {
            for reg in self.regs.clone() {
                if self.decisions.contains_key(&reg) {
                    continue;
                }
                if let Some(d) = self.try_decide(reg) {
                    #[cfg(any(debug_assertions, feature = "ghost"))]
                    self.ghost_check_decision(reg, &d);
                    self.decisions.insert(reg, d);
                }
            }
        }
        if self.decisions.len() == self.regs.len() {
            return CollectStatus::Decided;
        }
        if self.round_repliers.len() >= self.cfg.quorum() {
            CollectStatus::NextRound
        } else {
            CollectStatus::Wait
        }
    }

    fn try_decide(&self, reg: RegId) -> Option<Stamped> {
        match self.auth {
            Some(key) => self.try_decide_auth(reg, key),
            None => self.try_decide_unauth(reg),
        }
    }

    /// Whether the decided pair `p` carries a *fast-path certificate*: some
    /// single register shows a full write quorum (`2t + 1` distinct objects)
    /// whose **committed** field equals `p`, and no reply anywhere claims a
    /// pair newer than `p` (in `pw` or `w`).
    ///
    /// Safety of skipping the write-back under this certificate: of the
    /// `2t + 1` same-register commit claims at most `t` are lies, so at
    /// least `t + 1` *correct* objects hold `w ≥ p` forever. A later read
    /// deciding some `q < p` would count each of them as a non-replier or a
    /// higher-claimer — more than `t`, which the justifiability predicate
    /// forbids. Counting within one register is essential: the certificate
    /// must intersect the quorum a future reader collects *on that
    /// register*.
    ///
    /// The no-newer-claim condition detects contention (a concurrent write
    /// or write-back in flight) and Byzantine skew; either forces the
    /// caller back onto the full write-back path.
    pub fn fast_confirmed(&self, p: &Stamped) -> bool {
        for views in self.views.values() {
            for v in views.values() {
                if v.pw.pair > p.pair || v.w.pair > p.pair {
                    return false; // suspicion: someone claims newer state
                }
            }
        }
        if p.pair.is_bottom() {
            // Nothing was ever claimed anywhere: had any write completed,
            // quorum intersection would surface ≥ 1 correct claim above ⊥.
            return true;
        }
        self.regs.iter().any(|reg| {
            self.views
                .values()
                .filter(|vs| vs.get(reg).is_some_and(|v| v.w.pair == p.pair))
                .count()
                >= self.cfg.quorum()
        })
    }

    /// Ghost re-derivation of a decision certificate, independent of the
    /// candidate enumeration in [`CollectEngine::try_decide_unauth`]: `d`
    /// must be vouched (or ⊥/token-valid) and justifiable against the
    /// current reply set. Compiled out in release builds unless the `ghost`
    /// feature is on.
    #[cfg(any(debug_assertions, feature = "ghost"))]
    fn ghost_check_decision(&self, reg: RegId, d: &Stamped) {
        let t = self.cfg.fault_budget();
        let non_repliers = self.cfg.num_objects() - self.views.len();
        if let Some(key) = self.auth {
            assert!(
                self.is_valid(d, key),
                "ghost: decided pair fails token validation for {reg:?}: {d:?}"
            );
            return;
        }
        let vouchers = self
            .views
            .values()
            .filter(|vs| {
                vs.get(&reg)
                    .is_some_and(|v| v.pairs().into_iter().any(|s| s.pair == d.pair))
            })
            .count();
        assert!(
            d.pair.is_bottom() || vouchers >= self.cfg.vouch(),
            "ghost: decided pair has only {vouchers} vouchers for {reg:?}: {d:?}"
        );
        let higher = self
            .views
            .values()
            .filter(|vs| vs.get(&reg).is_some_and(|v| v.w.pair.ts > d.pair.ts))
            .count();
        assert!(
            non_repliers + higher <= t,
            "ghost: decision for {reg:?} not justifiable \
             ({non_repliers} non-repliers + {higher} higher-claimers > t = {t}): {d:?}"
        );
    }

    /// Secret-value rule: after a quorum of replies, return the maximum
    /// token-valid pair (⊥ counts as trivially valid).
    fn try_decide_auth(&self, reg: RegId, key: AuthKey) -> Option<Stamped> {
        if self.views.len() < self.cfg.quorum() {
            return None;
        }
        let mut best = Stamped::bottom();
        for views in self.views.values() {
            let Some(view) = views.get(&reg) else {
                continue;
            };
            for s in view.pairs() {
                if s.pair > best.pair && self.is_valid(s, key) {
                    best = s.clone();
                }
            }
        }
        Some(best)
    }

    fn is_valid(&self, s: &Stamped, key: AuthKey) -> bool {
        if s.pair.is_bottom() {
            return true;
        }
        match s.token {
            Some(tok) => key.verify(&s.pair, tok),
            None => false,
        }
    }

    /// Unauthenticated rule: maximum pair `p` with `occ(p) ≥ t+1` such that
    /// `#non-repliers + #higher-claimers(p) ≤ t`.
    fn try_decide_unauth(&self, reg: RegId) -> Option<Stamped> {
        let t = self.cfg.fault_budget();
        let s_total = self.cfg.num_objects();
        let non_repliers = s_total - self.views.len();
        if non_repliers > t {
            return None; // cannot justify terminating yet
        }

        // occ: distinct objects vouching for each pair (pw, w or history).
        let mut occ: BTreeMap<TsVal, (usize, Stamped)> = BTreeMap::new();
        // Bottom is vouched by objects whose fields are still initial.
        for views in self.views.values() {
            let Some(view) = views.get(&reg) else {
                continue;
            };
            for s in view.pairs() {
                let e = occ.entry(s.pair.clone()).or_insert((0, s.clone()));
                e.0 += 1;
            }
        }

        // Candidates in descending timestamp order.
        for (pair, (count, stamped)) in occ.iter().rev() {
            if *count < self.cfg.vouch() && !pair.is_bottom() {
                continue;
            }
            let higher_claimers = self
                .views
                .values()
                .filter(|vs| vs.get(&reg).map(|v| v.w.pair.ts > pair.ts).unwrap_or(false))
                .count();
            if non_repliers + higher_claimers <= t {
                return Some(stamped.clone());
            }
        }

        // ⊥ fallback when no object reported anything newer.
        let higher = self
            .views
            .values()
            .filter(|vs| {
                vs.get(&reg)
                    .map(|v| !v.w.pair.ts.is_bottom())
                    .unwrap_or(false)
            })
            .count();
        if non_repliers + higher <= t {
            return Some(Stamped::bottom());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Rep;
    use rastor_common::{Timestamp, Value};

    fn cfg() -> ClusterConfig {
        ClusterConfig::byzantine(1).unwrap() // S = 4, t = 1
    }

    fn stamped(ts: u64, v: u64) -> Stamped {
        Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(v)))
    }

    fn view(pw: Stamped, w: Stamped, hist: Vec<Stamped>) -> Rep {
        Rep::Views {
            views: vec![(RegId::WRITER, ObjectView { pw, w, hist })],
        }
    }

    fn committed_view(ts: u64, v: u64) -> Rep {
        let s = stamped(ts, v);
        view(s.clone(), s.clone(), vec![s])
    }

    fn bottom_view() -> Rep {
        view(Stamped::bottom(), Stamped::bottom(), vec![])
    }

    fn engine() -> CollectEngine {
        CollectEngine::with_min_rounds(cfg(), vec![RegId::WRITER], None, 1)
    }

    #[test]
    fn quiescent_committed_state_decides() {
        let mut e = engine();
        // 3 of 4 objects report the committed pair; 1 silent (possibly faulty).
        for i in 0..3 {
            let st = e.on_reply(ObjectId(i), 1, &committed_view(5, 50));
            if i < 2 {
                assert_eq!(st, CollectStatus::Wait);
            } else {
                assert_eq!(st, CollectStatus::Decided);
            }
        }
        assert_eq!(e.decisions()[&RegId::WRITER], stamped(5, 50));
    }

    #[test]
    fn no_write_decides_bottom() {
        let mut e = engine();
        e.on_reply(ObjectId(0), 1, &bottom_view());
        e.on_reply(ObjectId(1), 1, &bottom_view());
        let st = e.on_reply(ObjectId(2), 1, &bottom_view());
        assert_eq!(st, CollectStatus::Decided);
        assert!(e.decisions()[&RegId::WRITER].pair.is_bottom());
    }

    #[test]
    fn lone_forged_high_pair_is_not_returned() {
        let mut e = engine();
        // One (Byzantine) object claims a high committed pair nobody else has.
        e.on_reply(ObjectId(0), 1, &committed_view(99, 666));
        e.on_reply(ObjectId(1), 1, &bottom_view());
        e.on_reply(ObjectId(2), 1, &bottom_view());
        let st = e.on_reply(ObjectId(3), 1, &bottom_view());
        // occ(99) = 1 < t+1 = 2, so 99 is not a candidate; ⊥ is justified
        // because the single higher-claimer fits in the fault budget.
        assert_eq!(st, CollectStatus::Decided);
        assert!(e.decisions()[&RegId::WRITER].pair.is_bottom());
    }

    #[test]
    fn single_genuine_report_blocks_rather_than_returns_stale() {
        let mut e = engine();
        // The scenario from the paper's model discussion: exactly one
        // correct object saw write(5); two correct objects are stale; one
        // object is silent. The reader must NOT decide (⊥ would be stale if
        // the write completed, (5,·) has only one voucher), and instead
        // waits / moves to another round.
        e.on_reply(ObjectId(0), 1, &committed_view(5, 50));
        e.on_reply(ObjectId(1), 1, &bottom_view());
        let st = e.on_reply(ObjectId(2), 1, &bottom_view());
        // Quorum heard (3 ≥ S−t) but undecidable: next round.
        assert_eq!(st, CollectStatus::NextRound);
    }

    #[test]
    fn history_vouchers_unblock_in_later_round() {
        let mut e = engine();
        e.on_reply(ObjectId(0), 1, &committed_view(5, 50));
        e.on_reply(ObjectId(1), 1, &bottom_view());
        assert_eq!(
            e.on_reply(ObjectId(2), 1, &bottom_view()),
            CollectStatus::NextRound
        );
        e.begin_round();
        // Round 2: the stragglers have now processed the write — histories
        // vouch for (5,50) at 3 objects.
        e.on_reply(ObjectId(1), 2, &committed_view(5, 50));
        let st = e.on_reply(ObjectId(2), 2, &committed_view(5, 50));
        assert_eq!(st, CollectStatus::Decided);
        assert_eq!(e.decisions()[&RegId::WRITER], stamped(5, 50));
    }

    #[test]
    fn min_rounds_defers_decision() {
        let mut e = CollectEngine::unauth(cfg(), vec![RegId::WRITER]);
        for i in 0..3 {
            let st = e.on_reply(ObjectId(i), 1, &committed_view(1, 10));
            assert_ne!(st, CollectStatus::Decided, "round 1 must not decide");
            if i == 2 {
                assert_eq!(st, CollectStatus::NextRound);
            }
        }
        e.begin_round();
        let st = e.on_reply(ObjectId(0), 2, &committed_view(1, 10));
        assert_eq!(st, CollectStatus::Decided, "round 2 may decide");
        assert_eq!(e.rounds(), 2);
    }

    #[test]
    fn stale_candidate_blocked_by_fresh_committers() {
        let mut e = engine();
        // Two objects already committed ts=2; two lag at ts=1's history.
        // occ(1) = 4 but two higher-claimers + 0 non-repliers = 2 > t = 1,
        // so ts=1 cannot be decided; ts=2 has occ 2 ≥ t+1 and no higher
        // claimers → decide (2, 20).
        let old = stamped(1, 10);
        let new = stamped(2, 20);
        let lag = view(old.clone(), old.clone(), vec![old.clone()]);
        let fresh = view(new.clone(), new.clone(), vec![old.clone(), new.clone()]);
        e.on_reply(ObjectId(0), 1, &fresh);
        e.on_reply(ObjectId(1), 1, &fresh);
        e.on_reply(ObjectId(2), 1, &lag);
        let st = e.on_reply(ObjectId(3), 1, &lag);
        assert_eq!(st, CollectStatus::Decided);
        assert_eq!(e.decisions()[&RegId::WRITER], new);
    }

    #[test]
    fn auth_engine_decides_on_single_valid_report() {
        let key = AuthKey::new(1);
        let mut e = CollectEngine::auth(cfg(), vec![RegId::WRITER], key);
        let pair = TsVal::new(Timestamp(4), Value::from_u64(44));
        let signed = Stamped {
            token: Some(key.mint(&pair)),
            pair,
        };
        let vw = view(signed.clone(), signed.clone(), vec![signed.clone()]);
        e.on_reply(ObjectId(0), 1, &vw);
        e.on_reply(ObjectId(1), 1, &bottom_view());
        let st = e.on_reply(ObjectId(2), 1, &bottom_view());
        assert_eq!(
            st,
            CollectStatus::Decided,
            "1 valid report suffices with tokens"
        );
        assert_eq!(e.decisions()[&RegId::WRITER], signed);
        assert_eq!(e.rounds(), 1);
    }

    #[test]
    fn auth_engine_rejects_bad_tokens() {
        let key = AuthKey::new(1);
        let wrong = AuthKey::new(2);
        let mut e = CollectEngine::auth(cfg(), vec![RegId::WRITER], key);
        let pair = TsVal::new(Timestamp(9), Value::from_u64(99));
        let forged = Stamped {
            token: Some(wrong.mint(&pair)),
            pair,
        };
        let vw = view(forged.clone(), forged.clone(), vec![forged]);
        e.on_reply(ObjectId(0), 1, &vw);
        e.on_reply(ObjectId(1), 1, &bottom_view());
        let st = e.on_reply(ObjectId(2), 1, &bottom_view());
        assert_eq!(st, CollectStatus::Decided);
        assert!(
            e.decisions()[&RegId::WRITER].pair.is_bottom(),
            "forged token must be ignored"
        );
    }

    #[test]
    fn multi_register_collect_decides_all() {
        let mut e = CollectEngine::with_min_rounds(
            cfg(),
            vec![RegId::WRITER, RegId::ReaderReg(0)],
            None,
            1,
        );
        let writer_pair = stamped(3, 30);
        let reader_pair = stamped(2, 20);
        let rep = Rep::Views {
            views: vec![
                (
                    RegId::WRITER,
                    ObjectView {
                        pw: writer_pair.clone(),
                        w: writer_pair.clone(),
                        hist: vec![writer_pair.clone()],
                    },
                ),
                (
                    RegId::ReaderReg(0),
                    ObjectView {
                        pw: reader_pair.clone(),
                        w: reader_pair.clone(),
                        hist: vec![reader_pair.clone()],
                    },
                ),
            ],
        };
        e.on_reply(ObjectId(0), 1, &rep);
        e.on_reply(ObjectId(1), 1, &rep);
        let st = e.on_reply(ObjectId(2), 1, &rep);
        assert_eq!(st, CollectStatus::Decided);
        assert_eq!(e.decisions().len(), 2);
        assert_eq!(e.max_decision().unwrap(), writer_pair);
    }

    #[test]
    #[should_panic(expected = "collect over no registers")]
    fn empty_register_set_is_rejected() {
        let _ = CollectEngine::unauth(cfg(), vec![]);
    }
}
