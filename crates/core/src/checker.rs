//! History checkers for the paper's correctness properties.
//!
//! Section 2.2 of the paper defines single-writer **atomicity** through four
//! properties over a partial run (writes are naturally ordered by the single
//! writer; `val_k` is the value of the k-th write, `val_0 = ⊥`):
//!
//! 1. if a read returns `x` then there is `k` such that `val_k = x`;
//! 2. if a complete read succeeds write `wr_k`, it returns `val_l` with
//!    `l ≥ k`;
//! 3. if a read returns `val_k` (k ≥ 1) then `wr_k` precedes or is
//!    concurrent with the read;
//! 4. if read `rd1` returns `val_k` and a read `rd2` that succeeds `rd1`
//!    returns `val_l`, then `l ≥ k`.
//!
//! **Regularity** is properties (1)–(3); property (4) — no new/old
//! inversion — is what separates atomic from regular and what the
//! transformation's write-back buys.
//!
//! Every integration test and soak run records a [`History`] and asserts the
//! appropriate checker returns no violations; the lower-bound executors
//! assert the *presence* of specific violations.

use crate::clients::OpOutput;
use rastor_common::{ClientId, Timestamp, TsVal, Value};
use rastor_sim::Completion;
use std::collections::BTreeMap;
use std::fmt;

/// A recorded write operation (complete or not).
#[derive(Clone, Debug)]
pub struct WriteRec {
    /// Timestamp the writer assigned (k-th write carries `Timestamp(k)`).
    pub ts: Timestamp,
    /// The written value.
    pub val: Value,
    /// Invocation time.
    pub invoked_at: u64,
    /// Response time (`None` while incomplete, e.g. writer crashed).
    pub completed_at: Option<u64>,
}

/// A recorded complete read operation.
#[derive(Clone, Debug)]
pub struct ReadRec {
    /// The invoking reader.
    pub client: ClientId,
    /// Invocation time.
    pub invoked_at: u64,
    /// Response time.
    pub completed_at: u64,
    /// The pair the read returned.
    pub returned: TsVal,
}

/// A violation of the atomicity/regularity properties.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Property 1: a read returned a value that was never written.
    ForgedValue {
        /// The offending read's client.
        client: ClientId,
        /// The pair returned.
        returned: TsVal,
    },
    /// Property 2: a read that succeeds `wr_k` returned `val_l` with `l < k`.
    StaleRead {
        /// The offending read's client.
        client: ClientId,
        /// Timestamp returned.
        returned: Timestamp,
        /// Timestamp of the latest write preceding the read.
        required: Timestamp,
    },
    /// Property 3: a read returned a value whose write started after the
    /// read completed.
    FutureRead {
        /// The offending read's client.
        client: ClientId,
        /// Timestamp returned.
        returned: Timestamp,
    },
    /// Property 4: new/old inversion between two non-concurrent reads.
    NewOldInversion {
        /// The earlier read's client.
        first: ClientId,
        /// The later read's client.
        second: ClientId,
        /// Timestamp the earlier read returned.
        first_ts: Timestamp,
        /// Timestamp the later read returned.
        second_ts: Timestamp,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ForgedValue { client, returned } => {
                write!(f, "{client} read forged/never-written value {returned}")
            }
            Violation::StaleRead {
                client,
                returned,
                required,
            } => write!(
                f,
                "{client} read stale {returned} after write {required} completed"
            ),
            Violation::FutureRead { client, returned } => {
                write!(f, "{client} read {returned} before that write was invoked")
            }
            Violation::NewOldInversion {
                first,
                second,
                first_ts,
                second_ts,
            } => write!(
                f,
                "new/old inversion: {first} read {first_ts}, then {second} read {second_ts}"
            ),
        }
    }
}

/// A complete operation history of one register, ready for checking.
#[derive(Clone, Debug, Default)]
pub struct History {
    writes: BTreeMap<Timestamp, WriteRec>,
    reads: Vec<ReadRec>,
}

impl History {
    /// Start an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Record a write (complete or incomplete).
    pub fn push_write(&mut self, rec: WriteRec) {
        self.writes.insert(rec.ts, rec);
    }

    /// Record a complete read.
    pub fn push_read(&mut self, rec: ReadRec) {
        self.reads.push(rec);
    }

    /// Recorded writes in timestamp order.
    pub fn writes(&self) -> impl Iterator<Item = &WriteRec> {
        self.writes.values()
    }

    /// Recorded reads in insertion order.
    pub fn reads(&self) -> &[ReadRec] {
        &self.reads
    }

    /// Ingest the completions of a simulator run. Writes carry their pair in
    /// [`OpOutput::Wrote`]; reads in [`OpOutput::Read`]. Incomplete writes
    /// (crashed writer) must be added separately via [`History::push_write`]
    /// with `completed_at: None`.
    pub fn ingest(&mut self, completions: &[Completion<OpOutput>]) {
        for c in completions {
            match &c.output {
                OpOutput::Wrote(pair) => self.push_write(WriteRec {
                    ts: pair.ts,
                    val: pair.val.clone(),
                    invoked_at: c.stat.invoked_at,
                    completed_at: Some(c.stat.completed_at),
                }),
                OpOutput::Read(pair) => self.push_read(ReadRec {
                    client: c.client,
                    invoked_at: c.stat.invoked_at,
                    completed_at: c.stat.completed_at,
                    returned: pair.clone(),
                }),
            }
        }
    }

    /// Check regularity: properties (1)–(3).
    pub fn check_regular(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for rd in &self.reads {
            // Property 1: value genuineness.
            let genuine = if rd.returned.ts.is_bottom() {
                rd.returned.val.is_bottom()
            } else {
                self.writes
                    .get(&rd.returned.ts)
                    .map(|w| w.val == rd.returned.val)
                    .unwrap_or(false)
            };
            if !genuine {
                out.push(Violation::ForgedValue {
                    client: rd.client,
                    returned: rd.returned.clone(),
                });
                continue;
            }
            // Property 2: freshness w.r.t. preceding writes.
            let required = self
                .writes
                .values()
                .filter(|w| w.completed_at.map(|c| c < rd.invoked_at).unwrap_or(false))
                .map(|w| w.ts)
                .max()
                .unwrap_or(Timestamp::BOTTOM);
            if rd.returned.ts < required {
                out.push(Violation::StaleRead {
                    client: rd.client,
                    returned: rd.returned.ts,
                    required,
                });
            }
            // Property 3: no reads from the future.
            if !rd.returned.ts.is_bottom() {
                if let Some(w) = self.writes.get(&rd.returned.ts) {
                    if w.invoked_at > rd.completed_at {
                        out.push(Violation::FutureRead {
                            client: rd.client,
                            returned: rd.returned.ts,
                        });
                    }
                }
            }
        }
        out
    }

    /// Check atomicity: regularity plus property (4).
    pub fn check_atomic(&self) -> Vec<Violation> {
        let mut out = self.check_regular();
        for a in &self.reads {
            for b in &self.reads {
                if a.completed_at < b.invoked_at && b.returned.ts < a.returned.ts {
                    out.push(Violation::NewOldInversion {
                        first: a.client,
                        second: b.client,
                        first_ts: a.returned.ts,
                        second_ts: b.returned.ts,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(ts: u64, val: u64, inv: u64, comp: Option<u64>) -> WriteRec {
        WriteRec {
            ts: Timestamp(ts),
            val: Value::from_u64(val),
            invoked_at: inv,
            completed_at: comp,
        }
    }

    fn r(client: u32, inv: u64, comp: u64, ts: u64, val: u64) -> ReadRec {
        ReadRec {
            client: ClientId::reader(client),
            invoked_at: inv,
            completed_at: comp,
            returned: if ts == 0 {
                TsVal::bottom()
            } else {
                TsVal::new(Timestamp(ts), Value::from_u64(val))
            },
        }
    }

    #[test]
    fn clean_history_passes() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_read(r(0, 6, 9, 1, 10));
        h.push_read(r(1, 10, 12, 1, 10));
        assert!(h.check_atomic().is_empty());
    }

    #[test]
    fn forged_value_detected() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_read(r(0, 6, 9, 1, 99)); // right ts, wrong value
        h.push_read(r(1, 6, 9, 7, 70)); // never-written ts
        let v = h.check_regular();
        assert_eq!(v.len(), 2);
        assert!(matches!(v[0], Violation::ForgedValue { .. }));
        assert!(matches!(v[1], Violation::ForgedValue { .. }));
    }

    #[test]
    fn stale_read_detected() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_write(w(2, 20, 6, Some(9)));
        h.push_read(r(0, 10, 12, 1, 10)); // write 2 completed at 9 < 10
        let v = h.check_regular();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::StaleRead {
                required: Timestamp(2),
                ..
            }
        ));
    }

    #[test]
    fn concurrent_read_may_return_either() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_write(w(2, 20, 6, Some(20)));
        // Read overlaps write 2: returning either 1 or 2 is regular.
        h.push_read(r(0, 8, 15, 1, 10));
        h.push_read(r(1, 8, 25, 2, 20));
        assert!(h.check_regular().is_empty());
    }

    #[test]
    fn future_read_detected() {
        let mut h = History::new();
        h.push_write(w(1, 10, 50, Some(60)));
        h.push_read(r(0, 0, 10, 1, 10)); // read completed before write invoked
        let v = h.check_regular();
        assert!(v.iter().any(|x| matches!(x, Violation::FutureRead { .. })));
    }

    #[test]
    fn incomplete_write_is_concurrent_not_required() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_write(w(2, 20, 6, None)); // writer crashed mid-write
        h.push_read(r(0, 100, 110, 1, 10)); // old value OK: write 2 never completed
        h.push_read(r(1, 100, 110, 2, 20)); // new value also OK: concurrent
        assert!(h.check_regular().is_empty());
    }

    #[test]
    fn new_old_inversion_detected_only_by_atomic() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_write(w(2, 20, 6, Some(50))); // write 2 concurrent with both reads
        h.push_read(r(0, 10, 20, 2, 20)); // rd1 returns the concurrent write
        h.push_read(r(1, 30, 40, 1, 10)); // rd2 after rd1 returns the older one
        assert!(h.check_regular().is_empty(), "regular permits this");
        let v = h.check_atomic();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::NewOldInversion { .. }));
    }

    #[test]
    fn bottom_read_before_any_write_is_fine() {
        let mut h = History::new();
        h.push_read(r(0, 0, 5, 0, 0));
        assert!(h.check_atomic().is_empty());
    }

    #[test]
    fn bottom_read_after_complete_write_is_stale() {
        let mut h = History::new();
        h.push_write(w(1, 10, 0, Some(5)));
        h.push_read(r(0, 10, 15, 0, 0));
        let v = h.check_regular();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::StaleRead { .. }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::ForgedValue {
            client: ClientId::reader(0),
            returned: TsVal::new(Timestamp(9), Value::from_u64(1)),
        };
        assert!(v.to_string().contains("forged"));
    }
}
