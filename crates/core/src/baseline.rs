//! Baseline read protocols the paper compares against (Section 1.2):
//!
//! * [`SafeNoWriteReadClient`] — readers that are precluded from writing
//!   need `t + 1` rounds even for *safe* semantics (the lower bound of
//!   reference \[1\]). We implement the matching `t + 1`-round collect read:
//!   its round complexity is Ω(t), the "Ω(t) at best" row of the paper's
//!   related-work discussion.
//! * [`RetryStableReadClient`] — the classic "double collect until two
//!   consecutive rounds agree" read used by pre-2006 Byzantine storage: its
//!   round count grows without bound under concurrent writes (the
//!   "unbounded" row). Used by the T2 experiment to contrast with the
//!   transformation's constant 4 rounds.
//!
//! Both are safe in contention-free runs; their documented weaknesses under
//! concurrency are exactly why the paper's time-optimal construction
//! matters.

use crate::clients::OpOutput;
use crate::msg::{ObjectView, Rep, Req};
use rastor_common::{ClusterConfig, ObjectId, RegId, TsVal};
use rastor_sim::{ClientAction, RoundClient};
use std::collections::{BTreeMap, BTreeSet};

fn max_vouched(views: &BTreeMap<ObjectId, ObjectView>, vouch: usize) -> TsVal {
    let mut occ: BTreeMap<TsVal, usize> = BTreeMap::new();
    for view in views.values() {
        for s in view.pairs() {
            *occ.entry(s.pair.clone()).or_insert(0) += 1;
        }
    }
    occ.iter()
        .rev()
        .find(|(p, c)| **c >= vouch && !p.is_bottom())
        .map(|(p, _)| p.clone())
        .unwrap_or_else(TsVal::bottom)
}

/// The `t + 1`-round non-writing read (\[1\]'s matching upper bound for
/// safe storage with non-writing readers).
///
/// Round `i` collects a quorum of views; after `t + 1` rounds the client
/// returns the maximum pair vouched for by at least `t + 1` distinct
/// objects across the latest views. Safe semantics only: concurrent writes
/// may yield stale (but never forged) results.
#[derive(Debug)]
pub struct SafeNoWriteReadClient {
    cfg: ClusterConfig,
    reg: RegId,
    views: BTreeMap<ObjectId, ObjectView>,
    round_repliers: BTreeSet<ObjectId>,
    rounds_done: u32,
}

impl SafeNoWriteReadClient {
    /// A non-writing read of `reg`, costing exactly `t + 1` rounds.
    pub fn new(cfg: ClusterConfig, reg: RegId) -> SafeNoWriteReadClient {
        SafeNoWriteReadClient {
            cfg,
            reg,
            views: BTreeMap::new(),
            round_repliers: BTreeSet::new(),
            rounds_done: 0,
        }
    }

    fn collect_req(&self) -> Req {
        Req::Collect {
            regs: vec![self.reg],
        }
    }
}

impl RoundClient<Req, Rep> for SafeNoWriteReadClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        self.collect_req()
    }

    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &Rep) -> ClientAction<Req, OpOutput> {
        let Some(view) = reply.view_of(self.reg) else {
            return ClientAction::Wait;
        };
        self.views.insert(from, view.clone());
        if round == self.rounds_done + 1 {
            self.round_repliers.insert(from);
        }
        if self.round_repliers.len() < self.cfg.quorum() {
            return ClientAction::Wait;
        }
        self.rounds_done += 1;
        self.round_repliers.clear();
        let needed = self.cfg.fault_budget() as u32 + 1;
        if self.rounds_done < needed {
            ClientAction::NextRound(self.collect_req())
        } else {
            ClientAction::Complete(OpOutput::Read(max_vouched(&self.views, self.cfg.vouch())))
        }
    }
}

/// The classic retry-until-stable read: repeat collect rounds until two
/// consecutive rounds elect the same candidate. Unbounded under write
/// contention — the behaviour the paper cites as "unbounded … at best".
#[derive(Debug)]
pub struct RetryStableReadClient {
    cfg: ClusterConfig,
    reg: RegId,
    views: BTreeMap<ObjectId, ObjectView>,
    round_repliers: BTreeSet<ObjectId>,
    prev_candidate: Option<TsVal>,
    max_rounds: u32,
    rounds_done: u32,
}

impl RetryStableReadClient {
    /// A retry-until-stable read of `reg`. `max_rounds` caps the retries so
    /// adversarial benchmarks terminate; on hitting the cap the client
    /// returns its current candidate (documented degradation).
    pub fn new(cfg: ClusterConfig, reg: RegId, max_rounds: u32) -> RetryStableReadClient {
        RetryStableReadClient {
            cfg,
            reg,
            views: BTreeMap::new(),
            round_repliers: BTreeSet::new(),
            prev_candidate: None,
            max_rounds: max_rounds.max(2),
            rounds_done: 0,
        }
    }

    fn collect_req(&self) -> Req {
        Req::Collect {
            regs: vec![self.reg],
        }
    }
}

impl RoundClient<Req, Rep> for RetryStableReadClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        self.collect_req()
    }

    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &Rep) -> ClientAction<Req, OpOutput> {
        let Some(view) = reply.view_of(self.reg) else {
            return ClientAction::Wait;
        };
        self.views.insert(from, view.clone());
        if round == self.rounds_done + 1 {
            self.round_repliers.insert(from);
        }
        if self.round_repliers.len() < self.cfg.quorum() {
            return ClientAction::Wait;
        }
        self.rounds_done += 1;
        self.round_repliers.clear();
        let candidate = max_vouched(&self.views, self.cfg.vouch());
        let stable = self.prev_candidate.as_ref() == Some(&candidate);
        if (stable && self.rounds_done >= 2) || self.rounds_done >= self.max_rounds {
            ClientAction::Complete(OpOutput::Read(candidate))
        } else {
            self.prev_candidate = Some(candidate);
            ClientAction::NextRound(self.collect_req())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::ByzWriteClient;
    use crate::msg::Stamped;
    use crate::object::HonestObject;
    use rastor_common::{ClientId, OpKind, Timestamp, Value};
    use rastor_sim::{Sim, SimConfig};

    fn stamped(ts: u64, v: u64) -> Stamped {
        Stamped::plain(TsVal::new(Timestamp(ts), Value::from_u64(v)))
    }

    fn sim_with_honest(n: usize) -> Sim<Req, Rep, OpOutput> {
        let mut sim = Sim::new(SimConfig::default());
        for _ in 0..n {
            sim.add_object(Box::new(HonestObject::new()));
        }
        sim
    }

    #[test]
    fn safe_read_takes_t_plus_one_rounds() {
        for t in 1..=3 {
            let cfg = ClusterConfig::byzantine(t).unwrap();
            let mut sim = sim_with_honest(cfg.num_objects());
            sim.invoke_at(
                0,
                ClientId::writer(),
                OpKind::Write,
                Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(1, 10))),
            );
            sim.invoke_at(
                100,
                ClientId::reader(0),
                OpKind::Read,
                Box::new(SafeNoWriteReadClient::new(cfg, RegId::WRITER)),
            );
            let done = sim.run_to_quiescence();
            assert_eq!(done[1].stat.rounds.get(), t as u32 + 1);
            assert_eq!(done[1].output, OpOutput::Read(stamped(1, 10).pair));
        }
    }

    #[test]
    fn safe_read_returns_bottom_without_writes() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(SafeNoWriteReadClient::new(cfg, RegId::WRITER)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done[0].output, OpOutput::Read(TsVal::bottom()));
    }

    #[test]
    fn retry_read_stabilizes_in_two_rounds_when_quiet() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(1, 10))),
        );
        sim.invoke_at(
            100,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(RetryStableReadClient::new(cfg, RegId::WRITER, 64)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done[1].stat.rounds.get(), 2);
        assert_eq!(done[1].output, OpOutput::Read(stamped(1, 10).pair));
    }

    #[test]
    fn retry_read_degrades_under_write_contention() {
        use rastor_sim::{ScriptedController, SimConfig};
        let cfg = ClusterConfig::byzantine(1).unwrap();
        // Asynchrony favours the writer: the reader's links are 9× slower,
        // so several writes land between its collect rounds and the
        // candidate keeps moving.
        let controller = ScriptedController::new()
            .with_rule(rastor_sim::control::Rule::slow_all(9).client(ClientId::reader(0)));
        let mut sim: Sim<Req, Rep, OpOutput> =
            Sim::with_controller(SimConfig::default(), Box::new(controller));
        for _ in 0..4 {
            sim.add_object(Box::new(HonestObject::new()));
        }
        // A stream of writes racing the read.
        for k in 1..=10u64 {
            sim.invoke_at(
                k,
                ClientId::writer(),
                OpKind::Write,
                Box::new(ByzWriteClient::new(cfg, RegId::WRITER, stamped(k, k * 10))),
            );
        }
        sim.invoke_at(
            2,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(RetryStableReadClient::new(cfg, RegId::WRITER, 64)),
        );
        let done = sim.run_to_quiescence();
        let read = done
            .iter()
            .find(|c| c.client == ClientId::reader(0))
            .expect("read completes");
        assert!(
            read.stat.rounds.get() > 2,
            "contention forces retries (got {} rounds)",
            read.stat.rounds.get()
        );
    }

    #[test]
    fn max_vouched_ignores_underreported_pairs() {
        let mut views = BTreeMap::new();
        let lonely = ObjectView {
            pw: stamped(9, 90),
            w: stamped(9, 90),
            hist: vec![stamped(9, 90)],
        };
        let common = ObjectView {
            pw: stamped(2, 20),
            w: stamped(2, 20),
            hist: vec![stamped(2, 20)],
        };
        views.insert(ObjectId(0), lonely);
        views.insert(ObjectId(1), common.clone());
        views.insert(ObjectId(2), common);
        assert_eq!(max_vouched(&views, 2), stamped(2, 20).pair);
    }
}
