//! The pipelined op-driver layer: the deploy-path face of the one
//! op-driving implementation shared by both substrates.
//!
//! The round bookkeeping itself — nonce-keyed dispatch over one reply
//! channel, per-op deadlines, straggler and stale-round filtering — lives
//! in [`rastor_sim::driver::OpDriver`], where both the simulator's event
//! loop and the thread runtime's [`ThreadClient`] can reach it (the
//! simulator runs the paper's permissive [`StalePolicy::DeliverLate`]; the
//! thread runtime hardens to [`StalePolicy::DropLate`]). This module
//! re-exports that machinery under the protocol crate's roof and adds the
//! piece that only makes sense at the protocol level: [`drive_batch`], the
//! depth-bounded loop that keeps many protocol operations in flight per
//! connection and returns their outputs in submission order.
//!
//! None of this changes any protocol's round count: an operation still runs
//! exactly the rounds its automaton asks for (2-round writes, 4-round
//! unauthenticated atomic reads, …). Pipelining changes how many such
//! automata one connection multiplexes concurrently — throughput stops
//! being bounded by `1 / latency` per client, which is what the sharded kv
//! store's batched API exploits.

pub use rastor_sim::driver::{Broadcast, Dispatch, OpCompletion, OpDriver, OpTimeout, StalePolicy};
pub use rastor_sim::runtime::OpResult;

use rastor_common::OpKind;
use rastor_sim::runtime::{ThreadClient, Transport};
use rastor_sim::RoundClient;
use std::collections::HashMap;
use std::time::Duration;

/// One operation of a [`drive_batch`] call: which target cluster it runs
/// against, how to label it, and the automaton that runs it.
pub struct BatchOp<Q, R, Out> {
    /// Index into the `clusters` slice passed to [`drive_batch`].
    pub target: usize,
    /// Operation kind (statistics label only; rounds come from the
    /// automaton).
    pub kind: OpKind,
    /// The protocol automaton to drive.
    pub automaton: Box<dyn RoundClient<Q, R, Out = Out>>,
}

/// Drive a set of operations over one client connection, keeping at most
/// `depth` of them in flight, and return each operation's result **in
/// submission order** (`None` = the per-op `timeout` expired first).
///
/// Operations headed to the same cluster share round trips: every flush
/// sends one coalesced envelope per object, so `k` same-cluster operations
/// advancing together cost one object service delay, not `k`.
///
/// `depth = 1` degenerates to the closed loop (one op at a time); callers
/// wanting the paper's one-outstanding-operation discipline get it by
/// asking for it.
///
/// `clusters` may be any [`Transport`] substrate: in-process
/// [`rastor_sim::runtime::ThreadCluster`]s, socket-backed clusters, or a
/// mix — the deploy path is substrate-blind.
///
/// # Panics
///
/// Panics if `depth` is zero, a `target` is out of range of `clusters`, or
/// the client already has operations in flight.
pub fn drive_batch<Q, R, Out, T>(
    client: &mut ThreadClient<Q, R, Out>,
    clusters: &[&T],
    ops: Vec<BatchOp<Q, R, Out>>,
    depth: usize,
    timeout: Duration,
) -> Vec<Option<(Out, u32)>>
where
    Q: Send + Sync + 'static,
    R: Send + 'static,
    T: Transport<Q, R> + ?Sized,
{
    assert!(depth > 0, "a zero-depth pipeline cannot make progress");
    assert!(
        client.in_flight() == 0,
        "drive_batch on a client with operations already in flight"
    );
    let total = ops.len();
    let mut results: Vec<Option<(Out, u32)>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let targets: Vec<Option<&T>> = clusters.iter().map(|c| Some(*c)).collect();
    let mut by_nonce: HashMap<u64, usize> = HashMap::new();
    let mut queue = ops.into_iter().enumerate();
    let mut resolved = 0usize;

    while resolved < total {
        while client.in_flight() < depth {
            let Some((idx, op)) = queue.next() else {
                break;
            };
            assert!(op.target < clusters.len(), "batch op target out of range");
            let nonce = client.submit_op(op.target, op.kind, op.automaton, timeout);
            by_nonce.insert(nonce, idx);
        }
        for r in client.pump(&targets) {
            let idx = by_nonce.remove(&r.nonce).expect("submitted nonce");
            results[idx] = r.output;
            resolved += 1;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::OpOutput;
    use crate::msg::{Rep, Req};
    use crate::mwmr::{mw_read_in_group, MwWriteClient, RegGroup, Tag};
    use crate::object::HonestObject;
    use rastor_common::{ClientId, ClusterConfig, ObjectId, Value};
    use rastor_sim::runtime::ThreadCluster;
    use rastor_sim::ObjectBehavior;

    fn cluster(n: usize) -> ThreadCluster<Req, Rep> {
        let behaviors: Vec<Box<dyn ObjectBehavior<Req, Rep> + Send>> =
            (0..n).map(|_| Box::new(HonestObject::new()) as _).collect();
        ThreadCluster::spawn(behaviors, None)
    }

    const TIMEOUT: Duration = Duration::from_secs(10);

    /// A pipelined burst of multi-writer writes to disjoint registers, then
    /// reads of each — all outputs land in submission order and every write
    /// is visible to its read.
    #[test]
    fn pipelined_writes_then_reads_roundtrip() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let cl = cluster(4);
        let clusters = [&cl];
        let mut client = ThreadClient::new(ClientId::reader(0));
        // 8 keys, one register group each, writer/reader 0 of each group.
        let writes: Vec<BatchOp<Req, Rep, OpOutput>> = (0..8u32)
            .map(|k| BatchOp {
                target: 0,
                kind: OpKind::Write,
                automaton: Box::new(MwWriteClient::in_group(
                    cfg,
                    0,
                    RegGroup::keyed(k, 1),
                    Value::from_u64(u64::from(k) + 100),
                )),
            })
            .collect();
        let outs = drive_batch(&mut client, &clusters, writes, 4, TIMEOUT);
        for (k, out) in outs.into_iter().enumerate() {
            let (out, rounds) = out.expect("write completes");
            assert_eq!(rounds, 4, "mw-write is 4 rounds");
            let pair = out.into_wrote().expect("writes return Wrote");
            assert_eq!(Tag::from_timestamp(pair.ts), Tag { seq: 1, writer: 0 });
            assert_eq!(pair.val, Value::from_u64(k as u64 + 100));
        }
        let reads: Vec<BatchOp<Req, Rep, OpOutput>> = (0..8u32)
            .map(|k| BatchOp {
                target: 0,
                kind: OpKind::Read,
                automaton: Box::new(mw_read_in_group(cfg, 0, RegGroup::keyed(k, 1))),
            })
            .collect();
        let outs = drive_batch(&mut client, &clusters, reads, 8, TIMEOUT);
        for (k, out) in outs.into_iter().enumerate() {
            let (out, rounds) = out.expect("read completes");
            assert_eq!(rounds, 4, "atomic read is 4 rounds");
            let pair = out.into_read().expect("reads return Read");
            assert_eq!(pair.val, Value::from_u64(k as u64 + 100));
        }
    }

    /// Depth 1 is the closed loop: results identical, one at a time.
    #[test]
    fn depth_one_is_the_closed_loop() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let cl = cluster(4);
        let clusters = [&cl];
        let mut client = ThreadClient::new(ClientId::reader(0));
        let ops: Vec<BatchOp<Req, Rep, OpOutput>> = (0..3u32)
            .map(|k| BatchOp {
                target: 0,
                kind: OpKind::Write,
                automaton: Box::new(MwWriteClient::in_group(
                    cfg,
                    0,
                    RegGroup::keyed(k, 1),
                    Value::from_u64(7),
                )),
            })
            .collect();
        let outs = drive_batch(&mut client, &clusters, ops, 1, TIMEOUT);
        assert!(outs.iter().all(|o| o.is_some()));
    }

    /// A batch spanning two clusters routes every op to its own cluster.
    #[test]
    fn batches_span_clusters() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let (a, b) = (cluster(4), cluster(4));
        let clusters = [&a, &b];
        let mut client = ThreadClient::new(ClientId::reader(0));
        let ops: Vec<BatchOp<Req, Rep, OpOutput>> = (0..6usize)
            .map(|i| BatchOp {
                target: i % 2,
                kind: OpKind::Write,
                automaton: Box::new(MwWriteClient::in_group(
                    cfg,
                    0,
                    RegGroup::keyed(i as u32, 1),
                    Value::from_u64(i as u64 + 1),
                )),
            })
            .collect();
        let outs = drive_batch(&mut client, &clusters, ops, 6, TIMEOUT);
        assert!(outs.iter().all(|o| o.is_some()));
        // Each cluster saw only its own register groups: reading group 0
        // on cluster B (written only on A) returns ⊥.
        let probe: Vec<BatchOp<Req, Rep, OpOutput>> = vec![BatchOp {
            target: 1,
            kind: OpKind::Read,
            automaton: Box::new(mw_read_in_group(cfg, 0, RegGroup::keyed(0, 1))),
        }];
        let outs = drive_batch(&mut client, &clusters, probe, 1, TIMEOUT);
        let (out, _) = outs[0].clone().expect("read completes");
        assert!(out.into_read().expect("read output").is_bottom());
    }

    /// Timeouts resolve per op: a doomed op on a quorum-less cluster does
    /// not block its batch-mates on a healthy one.
    #[test]
    fn per_op_timeouts_do_not_poison_the_batch() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let healthy = cluster(4);
        let mut dead = cluster(4);
        for o in 0..3 {
            dead.crash_object(ObjectId(o));
        }
        let clusters = [&healthy, &dead];
        let mut client = ThreadClient::new(ClientId::reader(0));
        let ops: Vec<BatchOp<Req, Rep, OpOutput>> = (0..4usize)
            .map(|i| BatchOp {
                target: i % 2,
                kind: OpKind::Write,
                automaton: Box::new(MwWriteClient::in_group(
                    cfg,
                    0,
                    RegGroup::keyed(i as u32, 1),
                    Value::from_u64(1),
                )),
            })
            .collect();
        let outs = drive_batch(&mut client, &clusters, ops, 4, Duration::from_millis(200));
        assert!(outs[0].is_some() && outs[2].is_some(), "healthy ops land");
        assert!(outs[1].is_none() && outs[3].is_none(), "dead ops time out");
    }
}
