//! High-level deployment harness: pick a protocol, a fault budget and a
//! reader count; get a deployment with honest objects, typed write and
//! read clients, and checker-ready histories.
//!
//! Both substrates deploy from here, and both are driven by the **same**
//! op-driving implementation ([`rastor_sim::driver::OpDriver`]): the
//! simulator hosts the automata inside its event loop
//! ([`StorageSystem::run`]), and [`StorageSystem::spawn_thread_cluster`]
//! puts the identical objects on OS threads, where the automata from
//! [`StorageSystem::write_client`] / [`StorageSystem::read_client`] run
//! through [`crate::driver::drive_batch`]. There is no second round-loop to
//! keep in sync.
//!
//! Used by integration tests, benches and examples so that protocol
//! selection stays declarative.

use crate::adversary;
use crate::baseline::{RetryStableReadClient, SafeNoWriteReadClient};
use crate::checker::History;
use crate::clients::{AbdReadClient, AbdWriteClient, ByzWriteClient, OpOutput, RegularReadClient};
use crate::msg::{Rep, Req};
use crate::token::AuthKey;
use crate::transform::{make_stamped, AtomicReadClient, ReadMode};
use rastor_common::{ClientId, ClusterConfig, ObjectId, OpKind, RegId, Result, Timestamp, Value};
use rastor_sim::runtime::ThreadCluster;
use rastor_sim::{Completion, Controller, ObjectBehavior, RoundClient, Sim, SimConfig};

/// The protocols the harness can deploy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// ABD (crash model): 1-round writes, 2-round atomic reads.
    Abd,
    /// Byzantine regular register, unauthenticated: 2-round writes,
    /// 2-round reads (contention-free).
    ByzRegular,
    /// Byzantine regular register with secret values: 2-round writes,
    /// 1-round reads.
    AuthRegular,
    /// The paper's headline SWMR atomic construction: 2-round writes,
    /// 4-round reads.
    AtomicUnauth,
    /// The atomic construction with the adaptive read fast path: 2-round
    /// writes, 2-round reads when the collect is uncontended and confirmed,
    /// 4-round fallback otherwise.
    AtomicFast,
    /// The secret-value atomic construction: 2-round writes, 3-round reads.
    AtomicAuth,
    /// Non-writing safe reads: t+1 rounds (baseline \[1\]).
    SafeNoWrite,
    /// Retry-until-stable reads: unbounded under contention (baseline).
    RetryStable,
}

impl Protocol {
    /// The failure model this protocol assumes.
    pub fn model(self) -> rastor_common::FaultModel {
        match self {
            Protocol::Abd => rastor_common::FaultModel::Crash,
            Protocol::AuthRegular | Protocol::AtomicAuth => {
                rastor_common::FaultModel::ByzantineAuth
            }
            _ => rastor_common::FaultModel::Byzantine,
        }
    }

    /// Whether the protocol provides atomic (vs regular/safe) semantics.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            Protocol::Abd | Protocol::AtomicUnauth | Protocol::AtomicFast | Protocol::AtomicAuth
        )
    }

    /// All protocols, for table-driven experiments.
    pub fn all() -> [Protocol; 8] {
        [
            Protocol::Abd,
            Protocol::ByzRegular,
            Protocol::AuthRegular,
            Protocol::AtomicUnauth,
            Protocol::AtomicFast,
            Protocol::AtomicAuth,
            Protocol::SafeNoWrite,
            Protocol::RetryStable,
        ]
    }

    /// Short display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Abd => "abd-crash",
            Protocol::ByzRegular => "byz-regular",
            Protocol::AuthRegular => "auth-regular",
            Protocol::AtomicUnauth => "atomic-unauth",
            Protocol::AtomicFast => "atomic-fast",
            Protocol::AtomicAuth => "atomic-auth",
            Protocol::SafeNoWrite => "safe-nowrite",
            Protocol::RetryStable => "retry-stable",
        }
    }
}

/// A declarative workload: absolute invocation times for writes and reads.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// `(time, value)` — writes are issued by the single writer in order.
    pub writes: Vec<(u64, Value)>,
    /// `(time, reader-index)`.
    pub reads: Vec<(u64, u32)>,
}

impl Workload {
    /// `n` writes spaced `gap` apart starting at `start`, with values
    /// `10·k` for the k-th write.
    pub fn write_stream(n: u64, start: u64, gap: u64) -> Workload {
        Workload {
            writes: (0..n)
                .map(|k| (start + k * gap, Value::from_u64((k + 1) * 10)))
                .collect(),
            reads: Vec::new(),
        }
    }

    /// Add a read.
    #[must_use]
    pub fn with_read(mut self, at: u64, reader: u32) -> Workload {
        self.reads.push((at, reader));
        self
    }

    /// Add a write.
    #[must_use]
    pub fn with_write(mut self, at: u64, value: Value) -> Workload {
        self.writes.push((at, value));
        self
    }
}

/// Result of a harness run: the completions, a checker-ready history and the
/// raw trace.
#[derive(Debug)]
pub struct RunResult {
    /// All completed operations.
    pub completions: Vec<Completion<OpOutput>>,
    /// Checker-ready history (reads + completed writes; add incomplete
    /// writes manually if the workload crashes the writer).
    pub history: History,
    /// The raw simulator trace.
    pub trace: rastor_sim::Trace,
    /// Whether the run hit the event cap (stuck protocol).
    pub hit_cap: bool,
}

impl RunResult {
    /// Round counts of completed reads, in completion order.
    pub fn read_rounds(&self) -> Vec<u32> {
        self.completions
            .iter()
            .filter(|c| c.output.is_read())
            .map(|c| c.stat.rounds.get())
            .collect()
    }

    /// Round counts of completed writes, in completion order.
    pub fn write_rounds(&self) -> Vec<u32> {
        self.completions
            .iter()
            .filter(|c| !c.output.is_read())
            .map(|c| c.stat.rounds.get())
            .collect()
    }
}

/// A deployable storage system: protocol + cluster shape + writer state.
#[derive(Clone, Debug)]
pub struct StorageSystem {
    protocol: Protocol,
    cfg: ClusterConfig,
    num_readers: u32,
    key: Option<AuthKey>,
    next_ts: u64,
}

impl StorageSystem {
    /// Deploy `protocol` with fault budget `t` and `num_readers` readers at
    /// the protocol's optimal resilience.
    ///
    /// # Errors
    ///
    /// Propagates [`rastor_common::Error::InsufficientResilience`] (cannot
    /// happen for optimal shapes, but kept for API uniformity).
    pub fn new(protocol: Protocol, t: usize, num_readers: u32) -> Result<StorageSystem> {
        let model = protocol.model();
        let cfg = ClusterConfig::new(model.min_objects(t), t, model)?;
        Ok(StorageSystem::with_config(protocol, cfg, num_readers))
    }

    /// Deploy over an explicit (possibly non-optimal) cluster shape.
    pub fn with_config(protocol: Protocol, cfg: ClusterConfig, num_readers: u32) -> StorageSystem {
        let key = match protocol.model() {
            rastor_common::FaultModel::ByzantineAuth => Some(AuthKey::new(0xC0FFEE)),
            _ => None,
        };
        StorageSystem {
            protocol,
            cfg,
            num_readers,
            key,
            next_ts: 0,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.cfg
    }

    /// The deployed protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of readers the deployment supports.
    pub fn num_readers(&self) -> u32 {
        self.num_readers
    }

    /// A simulator populated with honest objects.
    pub fn build_sim(&self, controller: Box<dyn Controller<Req, Rep>>) -> Sim<Req, Rep, OpOutput> {
        let mut sim = Sim::with_controller(SimConfig::default(), controller);
        for _ in 0..self.cfg.num_objects() {
            sim.add_object(Box::new(crate::object::HonestObject::new()));
        }
        sim
    }

    /// The same deployment on OS threads: honest objects on one thread
    /// each, with an optional per-envelope service jitter. Drive the
    /// automata from [`StorageSystem::write_client`] /
    /// [`StorageSystem::read_client`] over it with
    /// [`crate::driver::drive_batch`] — the identical protocol code and op
    /// driver as the simulated path, minus the scheduling adversary.
    pub fn spawn_thread_cluster(
        &self,
        jitter: Option<std::time::Duration>,
    ) -> ThreadCluster<Req, Rep> {
        let behaviors: Vec<Box<dyn ObjectBehavior<Req, Rep> + Send>> = (0..self.cfg.num_objects())
            .map(|_| Box::new(crate::object::HonestObject::new()) as _)
            .collect();
        ThreadCluster::spawn(behaviors, jitter)
    }

    /// The next write's client automaton (assigns the next timestamp; the
    /// single writer's operations are sequential so creation order is
    /// timestamp order).
    pub fn write_client(&mut self, value: Value) -> Box<dyn RoundClient<Req, Rep, Out = OpOutput>> {
        self.next_ts += 1;
        let stamped = make_stamped(Timestamp(self.next_ts), value, self.key.as_ref());
        match self.protocol {
            Protocol::Abd => Box::new(AbdWriteClient::new(self.cfg, RegId::WRITER, stamped)),
            _ => Box::new(ByzWriteClient::new(self.cfg, RegId::WRITER, stamped)),
        }
    }

    /// A read automaton for the given reader index.
    ///
    /// # Panics
    ///
    /// Panics if `reader ≥ num_readers`.
    pub fn read_client(&self, reader: u32) -> Box<dyn RoundClient<Req, Rep, Out = OpOutput>> {
        assert!(reader < self.num_readers, "reader index out of range");
        match self.protocol {
            Protocol::Abd => Box::new(AbdReadClient::new(self.cfg, RegId::WRITER)),
            Protocol::ByzRegular => Box::new(RegularReadClient::unauth(self.cfg, RegId::WRITER)),
            Protocol::AuthRegular => Box::new(RegularReadClient::auth(
                self.cfg,
                RegId::WRITER,
                self.key.expect("auth protocol has key"),
            )),
            Protocol::AtomicUnauth => {
                Box::new(AtomicReadClient::unauth(self.cfg, reader, self.num_readers))
            }
            Protocol::AtomicFast => Box::new(
                AtomicReadClient::unauth(self.cfg, reader, self.num_readers)
                    .with_mode(ReadMode::Fast),
            ),
            Protocol::AtomicAuth => Box::new(AtomicReadClient::auth(
                self.cfg,
                reader,
                self.num_readers,
                self.key.expect("auth protocol has key"),
            )),
            Protocol::SafeNoWrite => Box::new(SafeNoWriteReadClient::new(self.cfg, RegId::WRITER)),
            Protocol::RetryStable => {
                Box::new(RetryStableReadClient::new(self.cfg, RegId::WRITER, 256))
            }
        }
    }

    /// Run a workload with optional Byzantine replacements, returning the
    /// completions and a checker-ready history.
    pub fn run(
        &mut self,
        controller: Box<dyn Controller<Req, Rep>>,
        workload: &Workload,
        byzantine: Vec<(ObjectId, Box<dyn ObjectBehavior<Req, Rep>>)>,
    ) -> RunResult {
        assert!(
            byzantine.len() <= self.cfg.fault_budget(),
            "cannot corrupt more than t objects"
        );
        let mut sim = self.build_sim(controller);
        for (oid, behavior) in byzantine {
            sim.replace_object(oid, behavior);
        }
        for (at, value) in &workload.writes {
            let client = self.write_client(value.clone());
            sim.invoke_at(*at, ClientId::writer(), OpKind::Write, client);
        }
        // Ghost: under atomicity, a read starting after another read
        // completed must not return an older pair. The rail is shared by
        // every read of this run and checked at completion time against the
        // floor observed at invocation.
        #[cfg(any(debug_assertions, feature = "ghost"))]
        let rail = ghost::ReadRail::new();
        for (at, reader) in &workload.reads {
            #[allow(unused_mut)]
            let mut client = self.read_client(*reader);
            #[cfg(any(debug_assertions, feature = "ghost"))]
            if self.protocol.is_atomic() {
                client = Box::new(ghost::NoRegressionRead::new(client, rail.clone()));
            }
            sim.invoke_at(*at, ClientId::reader(*reader), OpKind::Read, client);
        }
        let completions = sim.run_to_quiescence();
        let hit_cap = sim.hit_event_cap();
        let mut history = History::new();
        history.ingest(&completions);
        RunResult {
            completions,
            history,
            trace: sim.into_trace(),
            hit_cap,
        }
    }

    /// Convenience: a standard Byzantine behavior by name, for table-driven
    /// fault-injection tests.
    pub fn stock_adversary(kind: AdversaryKind) -> Box<dyn ObjectBehavior<Req, Rep>> {
        match kind {
            AdversaryKind::Silent => Box::new(adversary::SilentObject),
            AdversaryKind::Amnesiac => Box::new(adversary::AmnesiacObject),
            AdversaryKind::ForgeHigh => Box::new(adversary::ForgeHighObject::default_forgery()),
            AdversaryKind::CrashEarly => Box::new(adversary::CrashObject::new(3)),
            AdversaryKind::StaleReplay => Box::new(adversary::ReplayObject::new(4)),
        }
    }
}

/// Ghost reader no-regression rail: always-on in debug builds, compiled
/// out of release builds unless the `ghost` feature is enabled.
#[cfg(any(debug_assertions, feature = "ghost"))]
mod ghost {
    use super::*;
    use rastor_common::TsVal;
    use rastor_sim::ClientAction;
    use std::sync::{Arc, Mutex};

    /// The maximum pair any completed read of one run has returned.
    #[derive(Clone, Debug, Default)]
    pub(super) struct ReadRail(Arc<Mutex<TsVal>>);

    impl ReadRail {
        pub(super) fn new() -> ReadRail {
            ReadRail::default()
        }
        fn floor(&self) -> TsVal {
            self.0.lock().expect("ghost rail lock").clone()
        }
        fn raise(&self, p: &TsVal) {
            let mut g = self.0.lock().expect("ghost rail lock");
            if *p > *g {
                *g = p.clone();
            }
        }
    }

    /// Wraps a read automaton, asserting on completion that the returned
    /// pair is at least the rail's value at invocation time — exactly the
    /// atomicity no-new/old-inversion property for non-overlapping reads
    /// (reads that overlap observe a floor from before they started, so the
    /// check never over-constrains them).
    pub(super) struct NoRegressionRead {
        inner: Box<dyn RoundClient<Req, Rep, Out = OpOutput>>,
        rail: ReadRail,
        floor: TsVal,
    }

    impl NoRegressionRead {
        pub(super) fn new(
            inner: Box<dyn RoundClient<Req, Rep, Out = OpOutput>>,
            rail: ReadRail,
        ) -> NoRegressionRead {
            NoRegressionRead {
                inner,
                rail,
                floor: TsVal::bottom(),
            }
        }
    }

    impl RoundClient<Req, Rep> for NoRegressionRead {
        type Out = OpOutput;

        fn start(&mut self) -> Req {
            self.floor = self.rail.floor();
            self.inner.start()
        }

        fn on_reply(
            &mut self,
            from: ObjectId,
            round: u32,
            reply: &Rep,
        ) -> ClientAction<Req, OpOutput> {
            match self.inner.on_reply(from, round, reply) {
                ClientAction::Complete(out) => {
                    if out.is_read() {
                        let p = out.pair();
                        assert!(
                            *p >= self.floor,
                            "ghost: reader regression — read returned {p:?} \
                             below the completed-read floor {:?}",
                            self.floor
                        );
                        self.rail.raise(p);
                    }
                    ClientAction::Complete(out)
                }
                other => other,
            }
        }
    }
}

/// Stock adversaries for table-driven fault injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdversaryKind {
    /// Never replies.
    Silent,
    /// Acks writes but stores nothing.
    Amnesiac,
    /// Reports a fabricated maximal pair.
    ForgeHigh,
    /// Honest for 3 requests, then crashes.
    CrashEarly,
    /// Honest for 4 requests, then replays its frozen (genuine) state.
    StaleReplay,
}

impl AdversaryKind {
    /// All stock adversaries.
    pub fn all() -> [AdversaryKind; 5] {
        [
            AdversaryKind::Silent,
            AdversaryKind::Amnesiac,
            AdversaryKind::ForgeHigh,
            AdversaryKind::CrashEarly,
            AdversaryKind::StaleReplay,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rastor_sim::FixedDelay;

    fn quiet_run(protocol: Protocol) -> RunResult {
        let mut sys = StorageSystem::new(protocol, 1, 2).unwrap();
        let wl = Workload::default()
            .with_write(0, Value::from_u64(10))
            .with_read(100, 0)
            .with_read(200, 1);
        sys.run(Box::new(FixedDelay::new(1)), &wl, vec![])
    }

    #[test]
    fn every_protocol_round_trips_quietly() {
        for p in Protocol::all() {
            let res = quiet_run(p);
            assert_eq!(res.completions.len(), 3, "{p:?} completes all ops");
            assert!(!res.hit_cap);
            let violations = if p.is_atomic() {
                res.history.check_atomic()
            } else {
                res.history.check_regular()
            };
            assert!(violations.is_empty(), "{p:?}: {violations:?}");
            // Both reads see the write (they start after it completed).
            for c in res.completions.iter().filter(|c| c.output.is_read()) {
                assert_eq!(c.output.pair().ts, Timestamp(1), "{p:?}");
            }
        }
    }

    #[test]
    fn contention_free_round_counts_match_the_paper() {
        let expect: [(Protocol, u32, u32); 6] = [
            (Protocol::Abd, 1, 2),
            (Protocol::ByzRegular, 2, 2),
            (Protocol::AuthRegular, 2, 1),
            (Protocol::AtomicUnauth, 2, 4),
            // Contention-free, the fast path confirms and skips write-back.
            (Protocol::AtomicFast, 2, 2),
            (Protocol::AtomicAuth, 2, 3),
        ];
        for (p, wr, rr) in expect {
            let res = quiet_run(p);
            assert_eq!(res.write_rounds(), vec![wr], "{p:?} write rounds");
            assert_eq!(res.read_rounds(), vec![rr, rr], "{p:?} read rounds");
        }
    }

    #[test]
    fn harness_rejects_overbudget_corruption() {
        let mut sys = StorageSystem::new(Protocol::ByzRegular, 1, 1).unwrap();
        let wl = Workload::default().with_read(0, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sys.run(
                Box::new(FixedDelay::new(1)),
                &wl,
                vec![
                    (
                        ObjectId(0),
                        StorageSystem::stock_adversary(AdversaryKind::Silent),
                    ),
                    (
                        ObjectId(1),
                        StorageSystem::stock_adversary(AdversaryKind::Silent),
                    ),
                ],
            )
        }));
        assert!(result.is_err(), "t+1 corruptions must be rejected");
    }

    #[test]
    fn byzantine_objects_cannot_break_safety() {
        for p in [
            Protocol::ByzRegular,
            Protocol::AuthRegular,
            Protocol::AtomicUnauth,
            Protocol::AtomicFast,
            Protocol::AtomicAuth,
        ] {
            for adv in AdversaryKind::all() {
                let mut sys = StorageSystem::new(p, 1, 2).unwrap();
                let wl = Workload::default()
                    .with_write(0, Value::from_u64(10))
                    .with_write(50, Value::from_u64(20))
                    .with_read(100, 0)
                    .with_read(200, 1);
                let res = sys.run(
                    Box::new(FixedDelay::new(1)),
                    &wl,
                    vec![(ObjectId(0), StorageSystem::stock_adversary(adv))],
                );
                assert_eq!(res.completions.len(), 4, "{p:?}/{adv:?} wait-freedom");
                let violations = if p.is_atomic() {
                    res.history.check_atomic()
                } else {
                    res.history.check_regular()
                };
                assert!(violations.is_empty(), "{p:?}/{adv:?}: {violations:?}");
            }
        }
    }

    #[test]
    fn protocol_metadata() {
        assert!(Protocol::AtomicUnauth.is_atomic());
        assert!(!Protocol::ByzRegular.is_atomic());
        assert_eq!(Protocol::Abd.model(), rastor_common::FaultModel::Crash);
        assert_eq!(Protocol::all().len(), 8);
        assert_eq!(Protocol::AtomicAuth.name(), "atomic-auth");
        assert!(Protocol::AtomicFast.is_atomic());
        assert_eq!(Protocol::AtomicFast.name(), "atomic-fast");
        assert_eq!(
            Protocol::AtomicFast.model(),
            rastor_common::FaultModel::Byzantine
        );
    }

    /// The two deploy paths — simulator event loop and thread runtime —
    /// run the same automata through the same op driver; a quiet workload
    /// must produce identical outputs and round counts on both.
    #[test]
    fn sim_and_thread_deploys_agree() {
        use crate::driver::{drive_batch, BatchOp};
        for p in [
            Protocol::Abd,
            Protocol::ByzRegular,
            Protocol::AtomicUnauth,
            Protocol::AtomicFast,
        ] {
            // Simulated substrate.
            let mut sys = StorageSystem::new(p, 1, 1).unwrap();
            let wl = Workload::default()
                .with_write(0, Value::from_u64(42))
                .with_read(1_000, 0);
            let sim_res = sys.run(Box::new(rastor_sim::FixedDelay::new(1)), &wl, vec![]);

            // Thread substrate: same system, same automata constructors.
            let mut sys = StorageSystem::new(p, 1, 1).unwrap();
            let cluster = sys.spawn_thread_cluster(None);
            let clusters = [&cluster];
            let mut client = rastor_sim::runtime::ThreadClient::new(ClientId::reader(0));
            let ops = vec![
                BatchOp {
                    target: 0,
                    kind: OpKind::Write,
                    automaton: sys.write_client(Value::from_u64(42)),
                },
                BatchOp {
                    target: 0,
                    kind: OpKind::Read,
                    automaton: sys.read_client(0),
                },
            ];
            // Depth 1: the read starts after the write completes, exactly
            // like the scheduled simulator workload.
            let outs = drive_batch(
                &mut client,
                &clusters,
                ops,
                1,
                std::time::Duration::from_secs(10),
            );
            let thread_outs: Vec<(OpOutput, u32)> =
                outs.into_iter().map(|o| o.expect("completes")).collect();
            let sim_outs: Vec<(OpOutput, u32)> = sim_res
                .completions
                .iter()
                .map(|c| (c.output.clone(), c.stat.rounds.get()))
                .collect();
            assert_eq!(sim_outs, thread_outs, "{p:?}: substrates disagree");
        }
    }

    #[test]
    fn workload_builders() {
        let wl = Workload::write_stream(3, 10, 5).with_read(100, 0);
        assert_eq!(wl.writes.len(), 3);
        assert_eq!(wl.writes[2].0, 20);
        assert_eq!(wl.reads, vec![(100, 0)]);
    }
}
