//! The multi-writer multi-reader extension (paper, Section 5: "multi-writer
//! atomic storage can be implemented by applying the standard
//! transformations further" \[4, 20\]).
//!
//! Construction: each of the `N` writers owns one SWMR register
//! (`Writer(i)`), and each reader owns one write-back register, all
//! multiplexed over the same `3t + 1` objects.
//!
//! * **mw-write(v)** by writer `i`: regular-read all `N` writer registers
//!   to learn the highest tag (2 collect rounds), then two-phase-write
//!   `(max_tag.next(i), v)` into `Writer(i)` (2 rounds) — 4 rounds total.
//! * **mw-read()** by reader `j`: regular-read all `N + R` registers in
//!   parallel (2 rounds), two-phase-write the maximum into the reader's
//!   own register (2 rounds), return it — 4 rounds, unchanged from SWMR.
//!
//! Tags are `(sequence, writer-id)` pairs packed into the 64-bit timestamp
//! (sequence in the high bits, writer id in the low [`TAG_BITS`] bits), so
//! ties between concurrent writers break deterministically by writer id —
//! the standard lexicographic tag order.
//!
//! Atomicity sketch: writes are totally ordered by tag (distinct writers
//! never produce equal tags); a write completing before another starts is
//! dominated because the later writer's collect sees the earlier tag
//! through its register (regularity); reads inherit the SWMR
//! transformation's no-inversion property through the write-back register.
//!
//! **Pipelining caveat**: tag uniqueness *within* one writer id relies on
//! that writer's operations on a register group being sequential (each
//! collect observes the previous write's tag). Two concurrent writes by
//! the same writer to the same group could both compute
//! `max_tag.next_for(w)` and mint colliding tags — so a pipelined driver
//! (see `crate::driver`) may overlap operations freely *across* groups
//! (the kv store: across keys) but must serialize same-writer operations
//! on one group. `rastor_kv` enforces this with its per-key in-flight
//! rule; the write-back register of reads needs the same discipline.

use crate::collect::{CollectEngine, CollectStatus};
use crate::msg::{AckKind, Rep, Req, Stamped};
use rastor_common::{ClusterConfig, ObjectId, RegId, Timestamp, TsVal, Value};
use rastor_sim::{ClientAction, RoundClient};
use std::collections::BTreeSet;

use crate::clients::OpOutput;

/// Bits of the packed timestamp reserved for the writer id.
pub const TAG_BITS: u32 = 16;

/// A multi-writer tag: `(sequence, writer id)` with lexicographic order,
/// packed into a [`Timestamp`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tag {
    /// The per-register sequence number.
    pub seq: u64,
    /// The writer that produced the tag.
    pub writer: u32,
}

impl Tag {
    /// Decode a packed timestamp.
    pub fn from_timestamp(ts: Timestamp) -> Tag {
        Tag {
            seq: ts.0 >> TAG_BITS,
            writer: (ts.0 & ((1 << TAG_BITS) - 1)) as u32,
        }
    }

    /// Pack into a timestamp (sequence dominates, writer id breaks ties).
    pub fn to_timestamp(self) -> Timestamp {
        assert!(self.writer < (1 << TAG_BITS), "writer id exceeds tag space");
        Timestamp((self.seq << TAG_BITS) | self.writer as u64)
    }

    /// The tag writer `w` uses to dominate this tag.
    #[must_use]
    pub fn next_for(self, w: u32) -> Tag {
        Tag {
            seq: self.seq + 1,
            writer: w,
        }
    }
}

/// The register groups of an MWMR deployment with `n` writers and `r`
/// readers.
pub fn mwmr_regs(n_writers: u32, n_readers: u32) -> Vec<RegId> {
    RegGroup::first(n_writers, n_readers).all_regs()
}

/// A contiguous block of MWMR registers multiplexed on one cluster: writer
/// registers `Writer(writer_base ..)` and write-back registers
/// `ReaderReg(reader_base ..)`.
///
/// Many groups can share the same physical objects — the sharded kv store
/// hosts one group per key (`writer_base = reader_base = key · H` for `H`
/// client handles), which is what makes per-key MWMR registers cheap: no
/// new processes, just disjoint register namespaces.
///
/// ```
/// use rastor_core::mwmr::RegGroup;
/// use rastor_common::RegId;
/// let g = RegGroup::keyed(2, 3); // key 2 of a store with 3 handles
/// assert_eq!(g.writer_reg(1), RegId::Writer(7));
/// assert_eq!(g.all_regs().len(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegGroup {
    /// Index of the group's first writer register.
    pub writer_base: u32,
    /// Number of writers in the group.
    pub n_writers: u32,
    /// Index of the group's first write-back register.
    pub reader_base: u32,
    /// Number of readers in the group.
    pub n_readers: u32,
}

impl RegGroup {
    /// The group starting at register 0 (the classic single-group layout).
    pub fn first(n_writers: u32, n_readers: u32) -> RegGroup {
        RegGroup {
            writer_base: 0,
            n_writers,
            reader_base: 0,
            n_readers,
        }
    }

    /// The group of key `kid` in a store where every one of `n_handles`
    /// client handles acts as both writer `h` and reader `h` of each key.
    ///
    /// # Panics
    ///
    /// Panics if `kid * n_handles` overflows `u32` — wrapping would
    /// silently alias two keys' register groups (cross-key corruption).
    pub fn keyed(kid: u32, n_handles: u32) -> RegGroup {
        let base = kid
            .checked_mul(n_handles)
            .expect("register namespace exhausted: kid * n_handles overflows u32");
        RegGroup {
            writer_base: base,
            n_writers: n_handles,
            reader_base: base,
            n_readers: n_handles,
        }
    }

    /// The register written by the group's `w`-th writer.
    pub fn writer_reg(&self, w: u32) -> RegId {
        debug_assert!(w < self.n_writers, "writer index out of group");
        RegId::Writer(self.writer_base + w)
    }

    /// The write-back register owned by the group's `r`-th reader.
    pub fn reader_reg(&self, r: u32) -> RegId {
        debug_assert!(r < self.n_readers, "reader index out of group");
        RegId::ReaderReg(self.reader_base + r)
    }

    /// All writer registers of the group.
    pub fn writer_regs(&self) -> Vec<RegId> {
        (0..self.n_writers).map(|w| self.writer_reg(w)).collect()
    }

    /// All registers of the group (writers first, then write-backs).
    pub fn all_regs(&self) -> Vec<RegId> {
        let mut regs = self.writer_regs();
        regs.extend((0..self.n_readers).map(|r| self.reader_reg(r)));
        regs
    }
}

#[derive(Debug)]
enum WPhase {
    Collect,
    PreWrite,
    Commit,
}

/// The 4-round multi-writer write automaton.
#[derive(Debug)]
pub struct MwWriteClient {
    cfg: ClusterConfig,
    writer: u32,
    own_reg: RegId,
    value: Value,
    engine: CollectEngine,
    phase: WPhase,
    pair: Stamped,
    acks: BTreeSet<ObjectId>,
}

impl MwWriteClient {
    /// A write of `value` by writer `writer` (of `n_writers`), in the
    /// classic single-group register layout.
    pub fn new(cfg: ClusterConfig, writer: u32, n_writers: u32, value: Value) -> MwWriteClient {
        MwWriteClient::in_group(cfg, writer, RegGroup::first(n_writers, 0), value)
    }

    /// A write of `value` by the group's `writer`-th writer, against an
    /// arbitrary [`RegGroup`] (used by the sharded kv store, one group per
    /// key). The collect phase reads only the group's writer registers.
    pub fn in_group(
        cfg: ClusterConfig,
        writer: u32,
        group: RegGroup,
        value: Value,
    ) -> MwWriteClient {
        assert!(writer < group.n_writers, "writer index out of range");
        MwWriteClient {
            cfg,
            writer,
            own_reg: group.writer_reg(writer),
            value,
            engine: CollectEngine::unauth(cfg, group.writer_regs()),
            phase: WPhase::Collect,
            pair: Stamped::bottom(),
            acks: BTreeSet::new(),
        }
    }
}

impl RoundClient<Req, Rep> for MwWriteClient {
    type Out = OpOutput;

    fn start(&mut self) -> Req {
        self.engine.request()
    }

    fn on_reply(&mut self, from: ObjectId, round: u32, reply: &Rep) -> ClientAction<Req, OpOutput> {
        match self.phase {
            WPhase::Collect => match self.engine.on_reply(from, round, reply) {
                CollectStatus::Wait => ClientAction::Wait,
                CollectStatus::NextRound => {
                    self.engine.begin_round();
                    ClientAction::NextRound(self.engine.request())
                }
                CollectStatus::Decided => {
                    let max_tag = self
                        .engine
                        .decisions()
                        .values()
                        .map(|s| Tag::from_timestamp(s.pair.ts))
                        .max()
                        .unwrap_or_default();
                    let tag = max_tag.next_for(self.writer);
                    self.pair = Stamped::plain(TsVal::new(tag.to_timestamp(), self.value.clone()));
                    self.phase = WPhase::PreWrite;
                    ClientAction::NextRound(Req::PreWrite {
                        reg: self.own_reg,
                        pair: self.pair.clone(),
                    })
                }
            },
            WPhase::PreWrite => {
                if reply.is_ack(self.own_reg, AckKind::PreWrite) {
                    self.acks.insert(from);
                }
                if self.acks.len() >= self.cfg.quorum() {
                    self.phase = WPhase::Commit;
                    self.acks.clear();
                    ClientAction::NextRound(Req::Commit {
                        reg: self.own_reg,
                        pair: self.pair.clone(),
                    })
                } else {
                    ClientAction::Wait
                }
            }
            WPhase::Commit => {
                if reply.is_ack(self.own_reg, AckKind::Commit) {
                    self.acks.insert(from);
                }
                if self.acks.len() >= self.cfg.quorum() {
                    ClientAction::Complete(OpOutput::Wrote(self.pair.pair.clone()))
                } else {
                    ClientAction::Wait
                }
            }
        }
    }
}

/// The 4-round multi-writer read automaton: collect all writer and reader
/// registers, write the maximum back into the reader's own register.
pub fn mw_read_client(
    cfg: ClusterConfig,
    reader: u32,
    n_writers: u32,
    n_readers: u32,
) -> crate::transform::AtomicReadClient {
    mw_read_in_group(cfg, reader, RegGroup::first(n_writers, n_readers))
}

/// The 4-round multi-writer read automaton against an arbitrary
/// [`RegGroup`]: collect every register of the group, write the maximum
/// back into the group's `reader`-th write-back register.
pub fn mw_read_in_group(
    cfg: ClusterConfig,
    reader: u32,
    group: RegGroup,
) -> crate::transform::AtomicReadClient {
    mw_read_in_group_mode(cfg, reader, group, crate::transform::ReadMode::Slow)
}

/// [`mw_read_in_group`] with an explicit termination mode: under
/// [`ReadMode::Fast`](crate::transform::ReadMode::Fast) the read returns
/// after its 2 collect rounds whenever the decided pair carries a fast-path
/// certificate, falling back to the full 4-round write-back otherwise.
pub fn mw_read_in_group_mode(
    cfg: ClusterConfig,
    reader: u32,
    group: RegGroup,
    mode: crate::transform::ReadMode,
) -> crate::transform::AtomicReadClient {
    assert!(reader < group.n_readers, "reader index out of range");
    crate::transform::AtomicReadClient::with_regs(cfg, group.reader_reg(reader), group.all_regs())
        .with_mode(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::HonestObject;
    use rastor_common::{ClientId, OpKind};
    use rastor_sim::{Sim, SimConfig};

    fn sim_with_honest(n: usize) -> Sim<Req, Rep, OpOutput> {
        let mut sim = Sim::new(SimConfig::default());
        for _ in 0..n {
            sim.add_object(Box::new(HonestObject::new()));
        }
        sim
    }

    #[test]
    fn tag_packing_roundtrips_and_orders() {
        let a = Tag { seq: 5, writer: 2 };
        assert_eq!(Tag::from_timestamp(a.to_timestamp()), a);
        let b = Tag { seq: 5, writer: 3 };
        let c = Tag { seq: 6, writer: 0 };
        assert!(a.to_timestamp() < b.to_timestamp(), "writer id breaks ties");
        assert!(b.to_timestamp() < c.to_timestamp(), "sequence dominates");
        assert_eq!(a.next_for(7), Tag { seq: 6, writer: 7 });
    }

    #[test]
    #[should_panic(expected = "tag space")]
    fn tag_rejects_oversized_writer_ids() {
        let _ = Tag {
            seq: 1,
            writer: 1 << TAG_BITS,
        }
        .to_timestamp();
    }

    /// Two writers write sequentially; the later one must dominate.
    #[test]
    fn sequential_multi_writer_writes_are_ordered() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        // Using distinct ClientId::Reader slots as extra "writer" processes
        // would confuse roles; the sim only needs distinct clients, so we
        // model writer 1 as another client id.
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 0, 2, Value::from_u64(10))),
        );
        sim.invoke_at(
            1_000,
            ClientId::reader(9), // stands in for writer 1
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 1, 2, Value::from_u64(20))),
        );
        sim.invoke_at(
            2_000,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(mw_read_client(cfg, 0, 2, 2)),
        );
        let done = sim.run_to_quiescence();
        assert_eq!(done.len(), 3);
        // Write rounds: 2 collect + 2 write = 4.
        assert_eq!(done[0].stat.rounds.get(), 4);
        // The second write saw the first and dominated it.
        let t0 = Tag::from_timestamp(done[0].output.pair().ts);
        let t1 = Tag::from_timestamp(done[1].output.pair().ts);
        assert_eq!(t0, Tag { seq: 1, writer: 0 });
        assert_eq!(t1, Tag { seq: 2, writer: 1 });
        // The read returns the dominant write.
        assert_eq!(done[2].output.pair().val, Value::from_u64(20));
        assert_eq!(done[2].stat.rounds.get(), 4);
    }

    /// Concurrent writers produce distinct, totally ordered tags.
    #[test]
    fn concurrent_writers_break_ties_by_id() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 0, 2, Value::from_u64(10))),
        );
        sim.invoke_at(
            0,
            ClientId::reader(9),
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 1, 2, Value::from_u64(20))),
        );
        let done = sim.run_to_quiescence();
        let tags: Vec<Tag> = done
            .iter()
            .map(|c| Tag::from_timestamp(c.output.pair().ts))
            .collect();
        assert_ne!(tags[0], tags[1], "tags are unique");
        // A subsequent read returns one of the two — the tag-maximal one.
        let sim2 = sim_with_honest(4);
        let _ = sim2; // (separate scenario not needed; tags checked above)
    }

    /// A read after both writes returns the lexicographic maximum.
    #[test]
    fn read_after_concurrent_writes_returns_max_tag() {
        let cfg = ClusterConfig::byzantine(1).unwrap();
        let mut sim = sim_with_honest(4);
        sim.invoke_at(
            0,
            ClientId::writer(),
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 0, 2, Value::from_u64(10))),
        );
        sim.invoke_at(
            0,
            ClientId::reader(9),
            OpKind::Write,
            Box::new(MwWriteClient::new(cfg, 1, 2, Value::from_u64(20))),
        );
        sim.invoke_at(
            5_000,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(mw_read_client(cfg, 0, 2, 1)),
        );
        let done = sim.run_to_quiescence();
        let max_write_tag = done
            .iter()
            .filter(|c| !c.output.is_read())
            .map(|c| Tag::from_timestamp(c.output.pair().ts))
            .max()
            .unwrap();
        let read = done.iter().find(|c| c.output.is_read()).unwrap();
        assert_eq!(Tag::from_timestamp(read.output.pair().ts), max_write_tag);
    }

    #[test]
    fn mwmr_reg_layout() {
        let regs = mwmr_regs(2, 3);
        assert_eq!(regs.len(), 5);
        assert_eq!(regs[0], RegId::Writer(0));
        assert_eq!(regs[4], RegId::ReaderReg(2));
    }
}
