//! `rastor` — the cluster CLI: stand up a socket-backed deployment and
//! operate it from another terminal.
//!
//! ```text
//! rastor serve [--t N] [--shards N] [--handles N] [--fast-reads]
//!              [--chaos] [--wal DIR] [--jitter-us N] [--file PATH]
//! rastor status [--file PATH]
//! rastor metrics [--file PATH]
//! rastor restart-object --shard S --object O [--file PATH]
//! rastor partition-toggle --shard S on|off [--file PATH]
//! rastor bench [--ops N] [--depth N] [--put-pct N] [--keys N]
//!              [--threads N] [--file PATH]
//! rastor manifest
//! ```
//!
//! `serve` writes a `rastor-cluster/v1` cluster file (default
//! `rastor-cluster.json`) describing where everything listens; every
//! other subcommand reads it back, so the only coordination between
//! terminals is that one file. See `docs/OPERATIONS.md` for the
//! handbook.
//!
//! Exit codes: 0 success, 1 operation failed (refused admin command,
//! unreachable cluster), 2 usage error.

use rastor::bench::workload::{measure_store, seed_keys, WorkloadCfg};
use rastor::common::Result;
use rastor::core::msg::{Rep, Req};
use rastor::kv::{ShardedKvStore, StoreConfig};
use rastor::net::client::NetCluster;
use rastor::net::deploy::NetKv;
use rastor::net::wire::AdminCmd;
use rastor::net::{ChaosCfg, ControlClient, OpsServer};
use rastor::obs::{flat_counters, names, Registry};
use rastor::sim::runtime::Transport;
use rastor::store::InMemory;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const USAGE: &str =
    "usage: rastor <serve|status|metrics|restart-object|partition-toggle|bench|manifest> [flags]
  serve             stand up a cluster and write its cluster file
    --t N             per-shard fault budget (default 1; 3t+1 objects/shard)
    --shards N        shard count (default 2)
    --handles N       client handle pool size (default 4)
    --fast-reads      serve gets through the adaptive 2-round fast path
    --chaos           front every shard with a chaos proxy (partitionable)
    --wal DIR         wal-backed durability rooted at DIR (enables restart-object)
    --jitter-us N     per-envelope service delay at every object, microseconds
  status            per-shard object + read-path report from a live cluster
  metrics           dump the deployment's metrics registry as JSON
  restart-object    kill one object and recover it from disk
    --shard S --object O
  partition-toggle  cut or heal one shard's chaos-proxied link
    --shard S on|off
  bench             drive a workload from this process, report counts back
    --ops N           operations per thread (default 200)
    --depth N         ops in flight per handle (default 8)
    --put-pct N       percentage of puts (default 10)
    --keys N          key-space size (default 32)
    --threads N       client threads (default 4)
  manifest          print the exported-metric manifest
  (all cluster-facing subcommands accept --file PATH; default rastor-cluster.json)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let run = match cmd.as_str() {
        "manifest" => {
            print!("{}", rastor::obs::manifest_json());
            return ExitCode::SUCCESS;
        }
        "serve" => cmd_serve(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "restart-object" => cmd_admin(&args[1..], AdminVerb::Restart),
        "partition-toggle" => cmd_admin(&args[1..], AdminVerb::Partition),
        "bench" => cmd_bench(&args[1..]),
        _ => {
            eprintln!("rastor: unknown subcommand {cmd:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rastor {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Flag parsing: tiny, by hand — the flag set is small and fixed.

struct Flags {
    pairs: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

/// Flags that take a value; everything else starting `--` is boolean.
const VALUED: &[&str] = &[
    "--t",
    "--shards",
    "--handles",
    "--wal",
    "--jitter-us",
    "--file",
    "--ops",
    "--depth",
    "--put-pct",
    "--keys",
    "--threads",
    "--shard",
    "--object",
];

fn parse_flags(args: &[String]) -> std::result::Result<Flags, String> {
    let mut pairs = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&a.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                pairs.push((name.to_string(), Some(v.clone())));
            } else {
                pairs.push((name.to_string(), None));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { pairs, positional })
}

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num(&self, name: &str, default: u64) -> std::result::Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants a number, got {v:?}")),
        }
    }

    fn required_num(&self, name: &str) -> std::result::Result<u64, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("--{name} is required"))?;
        v.parse()
            .map_err(|_| format!("--{name} wants a number, got {v:?}"))
    }

    fn file(&self) -> &str {
        self.get("file").unwrap_or("rastor-cluster.json")
    }
}

fn usage_err(detail: String) -> ExitCode {
    eprintln!("rastor: {detail}\n{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// The cluster file: `rastor-cluster/v1`, line-disciplined JSON so both
// halves of the CLI (and humans, and scripts) can read it without a JSON
// parser — the same discipline as `BENCH_*.json` and `rastor-metrics/v1`.

struct ClusterFile {
    t: usize,
    handles: u32,
    fast_reads: bool,
    ops: SocketAddr,
    /// Per shard: (control addr — always the server, bypassing chaos;
    /// data addr — the proxy when one fronts the shard).
    shards: Vec<(SocketAddr, SocketAddr)>,
}

fn render_cluster_file(c: &ClusterFile) -> String {
    let mut out = String::from("{\n\"schema\": \"rastor-cluster/v1\",\n");
    let _ = writeln!(out, "\"t\": {},", c.t);
    let _ = writeln!(out, "\"handles\": {},", c.handles);
    let _ = writeln!(out, "\"fast_reads\": {},", c.fast_reads);
    let _ = writeln!(out, "\"ops\": \"{}\",", c.ops);
    out.push_str("\"shards\": [\n");
    for (s, (control, data)) in c.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"shard\": {s}, \"control\": \"{control}\", \"data\": \"{data}\"}}{}",
            if s + 1 == c.shards.len() { "" } else { "," }
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Pull `"key": value` off a line (value ends at `,` / `}` / EOL).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let rest = rest.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| matches!(c, ',' | '}'))
        .map_or(rest.len(), |(i, _)| i);
    Some(rest[..end].trim())
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

fn parse_addr(s: &str, what: &str) -> std::result::Result<SocketAddr, String> {
    s.parse()
        .map_err(|_| format!("cluster file: bad {what} address {s:?}"))
}

fn parse_cluster_file(path: &str) -> std::result::Result<ClusterFile, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read cluster file {path}: {e} (is a `rastor serve` running here?)")
    })?;
    let mut t = None;
    let mut handles = None;
    let mut fast_reads = None;
    let mut ops = None;
    let mut shards = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if line.contains("\"schema\":") {
            let schema = field_str(line, "schema").unwrap_or("?");
            if schema != "rastor-cluster/v1" {
                return Err(format!(
                    "cluster file {path} has schema {schema:?}, this rastor speaks rastor-cluster/v1"
                ));
            }
        } else if line.starts_with("{\"shard\":") {
            let control = field_str(line, "control")
                .ok_or_else(|| format!("cluster file {path}: shard line without a control addr"))?;
            let data = field_str(line, "data")
                .ok_or_else(|| format!("cluster file {path}: shard line without a data addr"))?;
            shards.push((parse_addr(control, "control")?, parse_addr(data, "data")?));
        } else if let Some(v) = field(line, "t") {
            t = v.parse::<usize>().ok();
        } else if let Some(v) = field(line, "handles") {
            handles = v.parse::<u32>().ok();
        } else if let Some(v) = field(line, "fast_reads") {
            fast_reads = v.parse::<bool>().ok();
        } else if let Some(v) = field_str(line, "ops") {
            ops = Some(parse_addr(v, "ops")?);
        }
    }
    let missing = |what: &str| format!("cluster file {path} is missing {what}");
    if shards.is_empty() {
        return Err(missing("its shard list"));
    }
    Ok(ClusterFile {
        t: t.ok_or_else(|| missing("\"t\""))?,
        handles: handles.ok_or_else(|| missing("\"handles\""))?,
        fast_reads: fast_reads.ok_or_else(|| missing("\"fast_reads\""))?,
        ops: ops.ok_or_else(|| missing("\"ops\""))?,
        shards,
    })
}

// ---------------------------------------------------------------------------
// serve

fn cmd_serve(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let (t, shards, handles, jitter_us) = match (
        flags.num("t", 1),
        flags.num("shards", 2),
        flags.num("handles", 4),
        flags.num("jitter-us", 0),
    ) {
        (Ok(t), Ok(s), Ok(h), Ok(j)) => (t as usize, s as usize, h as u32, j),
        (Err(e), ..) | (_, Err(e), _, _) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
            return Ok(usage_err(e))
        }
    };
    let mut cfg = StoreConfig::new(t, shards, handles).with_fast_reads(flags.has("fast-reads"));
    if jitter_us > 0 {
        cfg = cfg.with_jitter(Duration::from_micros(jitter_us));
    }
    if let Some(dir) = flags.get("wal") {
        cfg = cfg.with_wal(dir);
    }
    let chaos = flags.has("chaos").then(ChaosCfg::default);
    let fast_reads = cfg.fast_reads;
    let kv = NetKv::spawn(cfg, chaos)?;
    let shard_addrs: Vec<(SocketAddr, SocketAddr)> = (0..shards)
        .map(|s| (kv.control_addr(s), kv.data_addr(s)))
        .collect();
    let ops = OpsServer::spawn(Arc::new(Mutex::new(kv)))?;
    let cluster = ClusterFile {
        t,
        handles,
        fast_reads,
        ops: ops.local_addr(),
        shards: shard_addrs,
    };
    let path = flags.file();
    std::fs::write(path, render_cluster_file(&cluster))
        .map_err(|e| rastor::common::Error::io(format!("writing cluster file {path}"), &e))?;
    println!(
        "serving {shards} shard(s) of {} object(s) each (t={t}), ops at {}",
        3 * t + 1,
        ops.local_addr()
    );
    for (s, (control, data)) in cluster.shards.iter().enumerate() {
        println!("  shard {s}: control {control}, data {data}");
    }
    println!("cluster file written to {path}; ^C to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// status / metrics

fn cmd_status(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor status: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "cluster {}: t={} shards={} handles={} fast_reads={} ops={}",
        flags.file(),
        cluster.t,
        cluster.shards.len(),
        cluster.handles,
        if cluster.fast_reads { "on" } else { "off" },
        cluster.ops,
    );
    // One metrics snapshot serves every shard: all of a deployment's
    // servers share the process-wide registry.
    let counters = flat_counters(&ControlClient::connect(cluster.ops)?.metrics_json()?);
    let count = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    for (s, (control, data)) in cluster.shards.iter().enumerate() {
        let objects = ControlClient::connect(*control)?.status()?;
        let crashed = objects.iter().filter(|o| o.crashed).count();
        println!(
            "shard {s} @ {control} (data {data}): {}/{} objects serving",
            objects.len() - crashed,
            objects.len()
        );
        for o in &objects {
            println!(
                "  object {}: {}, {} envelope(s) served",
                o.id.0,
                if o.crashed { "CRASHED" } else { "serving" },
                o.served
            );
        }
        let fast = count(&format!("{}.{s}", names::KV_READS_FAST));
        let slow = count(&format!("{}.{s}", names::KV_READS_SLOW));
        println!("  reads: {fast} fast / {slow} slow");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor metrics: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    print!("{}", ControlClient::connect(cluster.ops)?.metrics_json()?);
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// restart-object / partition-toggle

enum AdminVerb {
    Restart,
    Partition,
}

fn cmd_admin(args: &[String], verb: AdminVerb) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cmd = match &verb {
        AdminVerb::Restart => {
            let (shard, object) = match (flags.required_num("shard"), flags.required_num("object"))
            {
                (Ok(s), Ok(o)) => (s as u32, o as u32),
                (Err(e), _) | (_, Err(e)) => return Ok(usage_err(e)),
            };
            AdminCmd::RestartObject { shard, object }
        }
        AdminVerb::Partition => {
            let shard = match flags.required_num("shard") {
                Ok(s) => s as u32,
                Err(e) => return Ok(usage_err(e)),
            };
            let on = match flags.positional.first().map(String::as_str) {
                Some("on") => true,
                Some("off") => false,
                other => {
                    return Ok(usage_err(format!(
                        "partition-toggle wants a trailing on|off, got {other:?}"
                    )))
                }
            };
            AdminCmd::Partition { shard, on }
        }
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let outcome = ControlClient::connect(cluster.ops)?.admin(cmd)?;
    println!("{}", outcome.detail);
    Ok(if outcome.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---------------------------------------------------------------------------
// bench

fn cmd_bench(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let (ops, depth, put_pct, keys, threads) = match (
        flags.num("ops", 200),
        flags.num("depth", 8),
        flags.num("put-pct", 10),
        flags.num("keys", 32),
        flags.num("threads", 4),
    ) {
        (Ok(o), Ok(d), Ok(p), Ok(k), Ok(t)) => (o, d as u32, p as u32, k as u32, t as u32),
        (Err(e), ..)
        | (_, Err(e), ..)
        | (_, _, Err(e), _, _)
        | (_, _, _, Err(e), _)
        | (_, _, _, _, Err(e)) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor bench: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    // Connect a store of our own to the cluster's data plane; the local
    // global registry collects this process's kv-seam metrics, which we
    // report back to the deployment afterwards.
    let transports: Vec<Box<dyn Transport<Req, Rep> + Send + Sync>> = cluster
        .shards
        .iter()
        .map(|(_, data)| {
            NetCluster::connect(&[*data])
                .map(|c| Box::new(c) as Box<dyn Transport<Req, Rep> + Send + Sync>)
        })
        .collect::<Result<_>>()?;
    let registry = Registry::global();
    let store = ShardedKvStore::over_transports(
        cluster.t,
        cluster.handles.max(threads),
        cluster.fast_reads,
        transports,
        Arc::new(InMemory),
        Some(Arc::clone(&registry)),
    )?;
    let mut cfg =
        WorkloadCfg::closed("cli-bench", cluster.shards.len(), threads, put_pct).pipelined(depth);
    cfg.keys = keys;
    cfg.ops_per_thread = ops;
    cfg.fast_reads = cluster.fast_reads;
    seed_keys(&store, keys);
    let row = measure_store(&store, &cfg);
    println!(
        "{}: {} ops ({} errors) in {:.2}s = {:.0} ops/s",
        cfg.name, row.ops, row.errors, row.elapsed_secs, row.ops_per_sec
    );
    if let Some(l) = &row.put_lat_us {
        println!(
            "  put latency µs: mean {:.0} p50 {} p95 {} max {}",
            l.mean, l.p50, l.p95, l.max
        );
    }
    if let Some(l) = &row.get_lat_us {
        println!(
            "  get latency µs: mean {:.0} p50 {} p95 {} max {}",
            l.mean, l.p50, l.p95, l.max
        );
    }
    if let Some(r) = row.get_rounds_mean {
        println!("  get rounds mean: {r:.2}");
    }
    // Report this client's per-shard read-path counts to the shard that
    // earned them, as plain counters (`kv.reads_fast.<s>`): `rastor
    // status` then shows them next to the server-side object tallies.
    let fast = registry.counter_vec(names::KV_READS_FAST, cluster.shards.len());
    let slow = registry.counter_vec(names::KV_READS_SLOW, cluster.shards.len());
    for (s, (control, _)) in cluster.shards.iter().enumerate() {
        let counts = vec![
            (format!("{}.{s}", names::KV_READS_FAST), fast.get(s)),
            (format!("{}.{s}", names::KV_READS_SLOW), slow.get(s)),
        ];
        ControlClient::connect(*control)?.report(counts)?;
        println!(
            "  shard {s}: {} fast / {} slow reads (reported to {control})",
            fast.get(s),
            slow.get(s)
        );
    }
    Ok(ExitCode::SUCCESS)
}
