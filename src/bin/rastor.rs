//! `rastor` — the cluster CLI: stand up a socket-backed deployment and
//! operate it from another terminal.
//!
//! ```text
//! rastor serve [--t N] [--shards N] [--handles N] [--fast-reads]
//!              [--chaos] [--wal DIR] [--jitter-us N] [--slow-us N]
//!              [--no-trace] [--file PATH]
//! rastor status [--file PATH]
//! rastor metrics [--json] [--file PATH]
//! rastor watch [--interval SECS] [--once] [--file PATH]
//! rastor trace [--json] [--file PATH]
//! rastor restart-object --shard S --object O [--file PATH]
//! rastor partition-toggle --shard S on|off [--file PATH]
//! rastor bench [--ops N] [--depth N] [--put-pct N] [--keys N]
//!              [--threads N] [--file PATH]
//! rastor manifest
//! ```
//!
//! `serve` writes a `rastor-cluster/v1` cluster file (default
//! `rastor-cluster.json`) describing where everything listens; every
//! other subcommand reads it back, so the only coordination between
//! terminals is that one file. See `docs/OPERATIONS.md` for the
//! handbook.
//!
//! Exit codes: 0 success, 1 operation failed (refused admin command,
//! unreachable cluster), 2 usage error.

use rastor::bench::workload::{measure_store, seed_keys, WorkloadCfg};
use rastor::common::Result;
use rastor::core::msg::{Rep, Req};
use rastor::kv::{ShardedKvStore, StoreConfig};
use rastor::net::client::NetCluster;
use rastor::net::deploy::NetKv;
use rastor::net::wire::AdminCmd;
use rastor::net::{ChaosCfg, ControlClient, OpsServer};
use rastor::obs::{flat_counters, names, Registry};
use rastor::sim::runtime::Transport;
use rastor::store::InMemory;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const USAGE: &str =
    "usage: rastor <serve|status|metrics|watch|trace|restart-object|partition-toggle|bench|manifest> [flags]
  serve             stand up a cluster and write its cluster file
    --t N             per-shard fault budget (default 1; 3t+1 objects/shard)
    --shards N        shard count (default 2)
    --handles N       client handle pool size (default 4)
    --fast-reads      serve gets through the adaptive 2-round fast path
    --chaos           front every shard with a chaos proxy (partitionable)
    --wal DIR         wal-backed durability rooted at DIR (enables restart-object)
    --jitter-us N     per-envelope service delay at every object, microseconds
    --slow-us N       slow-op capture threshold, microseconds (default 10000)
    --trace-sample N  trace one op in N (default 8; 1 traces everything)
    --no-trace        disable the span recorder (tracing is on by default)
  status            per-shard object + read-path report from a live cluster
  metrics           readable metrics report (histograms as p50/p95/p99)
    --json            dump the raw rastor-metrics/v1 document instead
  watch             live per-minute throughput/latency sparkline from the rings
    --interval SECS   refresh period (default 2)
    --once            print one frame and exit (for scripts and CI)
  trace             dump captured slow-op traces from a live cluster
    --json            dump the raw rastor-traces/v1 document instead
  restart-object    kill one object and recover it from disk
    --shard S --object O
  partition-toggle  cut or heal one shard's chaos-proxied link
    --shard S on|off
  bench             drive a workload from this process, report counts back
    --ops N           operations per thread (default 200)
    --depth N         ops in flight per handle (default 8)
    --put-pct N       percentage of puts (default 10)
    --keys N          key-space size (default 32)
    --threads N       client threads (default 4)
    --trace-sample N  mint trace ids for one op in N (default 0 = untraced;
                      traced ops get server-side spans captured at the cluster)
  manifest          print the exported-metric manifest
  (all cluster-facing subcommands accept --file PATH; default rastor-cluster.json)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let run = match cmd.as_str() {
        "manifest" => {
            print!("{}", rastor::obs::manifest_json());
            return ExitCode::SUCCESS;
        }
        "serve" => cmd_serve(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "restart-object" => cmd_admin(&args[1..], AdminVerb::Restart),
        "partition-toggle" => cmd_admin(&args[1..], AdminVerb::Partition),
        "bench" => cmd_bench(&args[1..]),
        _ => {
            eprintln!("rastor: unknown subcommand {cmd:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rastor {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Flag parsing: tiny, by hand — the flag set is small and fixed.

struct Flags {
    pairs: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

/// Flags that take a value; everything else starting `--` is boolean.
const VALUED: &[&str] = &[
    "--t",
    "--shards",
    "--handles",
    "--wal",
    "--jitter-us",
    "--slow-us",
    "--trace-sample",
    "--interval",
    "--file",
    "--ops",
    "--depth",
    "--put-pct",
    "--keys",
    "--threads",
    "--shard",
    "--object",
];

fn parse_flags(args: &[String]) -> std::result::Result<Flags, String> {
    let mut pairs = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&a.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                pairs.push((name.to_string(), Some(v.clone())));
            } else {
                pairs.push((name.to_string(), None));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { pairs, positional })
}

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num(&self, name: &str, default: u64) -> std::result::Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants a number, got {v:?}")),
        }
    }

    fn required_num(&self, name: &str) -> std::result::Result<u64, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("--{name} is required"))?;
        v.parse()
            .map_err(|_| format!("--{name} wants a number, got {v:?}"))
    }

    fn file(&self) -> &str {
        self.get("file").unwrap_or("rastor-cluster.json")
    }
}

fn usage_err(detail: String) -> ExitCode {
    eprintln!("rastor: {detail}\n{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// The cluster file: `rastor-cluster/v1`, line-disciplined JSON so both
// halves of the CLI (and humans, and scripts) can read it without a JSON
// parser — the same discipline as `BENCH_*.json` and `rastor-metrics/v1`.

struct ClusterFile {
    t: usize,
    handles: u32,
    fast_reads: bool,
    ops: SocketAddr,
    /// Per shard: (control addr — always the server, bypassing chaos;
    /// data addr — the proxy when one fronts the shard).
    shards: Vec<(SocketAddr, SocketAddr)>,
}

fn render_cluster_file(c: &ClusterFile) -> String {
    let mut out = String::from("{\n\"schema\": \"rastor-cluster/v1\",\n");
    let _ = writeln!(out, "\"t\": {},", c.t);
    let _ = writeln!(out, "\"handles\": {},", c.handles);
    let _ = writeln!(out, "\"fast_reads\": {},", c.fast_reads);
    let _ = writeln!(out, "\"ops\": \"{}\",", c.ops);
    out.push_str("\"shards\": [\n");
    for (s, (control, data)) in c.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"shard\": {s}, \"control\": \"{control}\", \"data\": \"{data}\"}}{}",
            if s + 1 == c.shards.len() { "" } else { "," }
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Pull `"key": value` off a line (value ends at `,` / `}` / EOL).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let rest = rest.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| matches!(c, ',' | '}'))
        .map_or(rest.len(), |(i, _)| i);
    Some(rest[..end].trim())
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

fn parse_addr(s: &str, what: &str) -> std::result::Result<SocketAddr, String> {
    s.parse()
        .map_err(|_| format!("cluster file: bad {what} address {s:?}"))
}

fn parse_cluster_file(path: &str) -> std::result::Result<ClusterFile, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read cluster file {path}: {e} (is a `rastor serve` running here?)")
    })?;
    let mut t = None;
    let mut handles = None;
    let mut fast_reads = None;
    let mut ops = None;
    let mut shards = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if line.contains("\"schema\":") {
            let schema = field_str(line, "schema").unwrap_or("?");
            if schema != "rastor-cluster/v1" {
                return Err(format!(
                    "cluster file {path} has schema {schema:?}, this rastor speaks rastor-cluster/v1"
                ));
            }
        } else if line.starts_with("{\"shard\":") {
            let control = field_str(line, "control")
                .ok_or_else(|| format!("cluster file {path}: shard line without a control addr"))?;
            let data = field_str(line, "data")
                .ok_or_else(|| format!("cluster file {path}: shard line without a data addr"))?;
            shards.push((parse_addr(control, "control")?, parse_addr(data, "data")?));
        } else if let Some(v) = field(line, "t") {
            t = v.parse::<usize>().ok();
        } else if let Some(v) = field(line, "handles") {
            handles = v.parse::<u32>().ok();
        } else if let Some(v) = field(line, "fast_reads") {
            fast_reads = v.parse::<bool>().ok();
        } else if let Some(v) = field_str(line, "ops") {
            ops = Some(parse_addr(v, "ops")?);
        }
    }
    let missing = |what: &str| format!("cluster file {path} is missing {what}");
    if shards.is_empty() {
        return Err(missing("its shard list"));
    }
    Ok(ClusterFile {
        t: t.ok_or_else(|| missing("\"t\""))?,
        handles: handles.ok_or_else(|| missing("\"handles\""))?,
        fast_reads: fast_reads.ok_or_else(|| missing("\"fast_reads\""))?,
        ops: ops.ok_or_else(|| missing("\"ops\""))?,
        shards,
    })
}

// ---------------------------------------------------------------------------
// serve

fn cmd_serve(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let (t, shards, handles, jitter_us) = match (
        flags.num("t", 1),
        flags.num("shards", 2),
        flags.num("handles", 4),
        flags.num("jitter-us", 0),
    ) {
        (Ok(t), Ok(s), Ok(h), Ok(j)) => (t as usize, s as usize, h as u32, j),
        (Err(e), ..) | (_, Err(e), _, _) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
            return Ok(usage_err(e))
        }
    };
    let (slow_us, trace_sample) = match (
        flags.num("slow-us", rastor::obs::trace::DEFAULT_SLOW_OP_THRESHOLD_US),
        flags.num("trace-sample", rastor::obs::trace::DEFAULT_SAMPLE_EVERY),
    ) {
        (Ok(s), Ok(n)) => (s, n),
        (Err(e), _) | (_, Err(e)) => return Ok(usage_err(e)),
    };
    // Tracing is on by default in a served deployment: the recorder is
    // fixed-memory, span sites are trace-id-gated, and only one op in
    // `--trace-sample` pays for spans at all.
    rastor::obs::trace::global().set_threshold_us(slow_us);
    rastor::obs::trace::global().set_sample_every(trace_sample);
    rastor::obs::trace::global().set_enabled(!flags.has("no-trace"));
    let mut cfg = StoreConfig::new(t, shards, handles).with_fast_reads(flags.has("fast-reads"));
    if jitter_us > 0 {
        cfg = cfg.with_jitter(Duration::from_micros(jitter_us));
    }
    if let Some(dir) = flags.get("wal") {
        cfg = cfg.with_wal(dir);
    }
    let chaos = flags.has("chaos").then(ChaosCfg::default);
    let fast_reads = cfg.fast_reads;
    let kv = NetKv::spawn(cfg, chaos)?;
    let shard_addrs: Vec<(SocketAddr, SocketAddr)> = (0..shards)
        .map(|s| (kv.control_addr(s), kv.data_addr(s)))
        .collect();
    let ops = OpsServer::spawn(Arc::new(Mutex::new(kv)))?;
    let cluster = ClusterFile {
        t,
        handles,
        fast_reads,
        ops: ops.local_addr(),
        shards: shard_addrs,
    };
    let path = flags.file();
    std::fs::write(path, render_cluster_file(&cluster))
        .map_err(|e| rastor::common::Error::io(format!("writing cluster file {path}"), &e))?;
    println!(
        "serving {shards} shard(s) of {} object(s) each (t={t}), ops at {}",
        3 * t + 1,
        ops.local_addr()
    );
    for (s, (control, data)) in cluster.shards.iter().enumerate() {
        println!("  shard {s}: control {control}, data {data}");
    }
    if flags.has("no-trace") {
        println!("tracing off");
    } else {
        println!(
            "tracing on, slow-op capture threshold {slow_us}\u{b5}s, sampling 1 in {}",
            trace_sample.max(1)
        );
    }
    println!("cluster file written to {path}; ^C to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// status / metrics

fn cmd_status(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor status: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "cluster {}: t={} shards={} handles={} fast_reads={} ops={}",
        flags.file(),
        cluster.t,
        cluster.shards.len(),
        cluster.handles,
        if cluster.fast_reads { "on" } else { "off" },
        cluster.ops,
    );
    // One metrics snapshot serves every shard: all of a deployment's
    // servers share the process-wide registry.
    let counters = flat_counters(&ControlClient::connect(cluster.ops)?.metrics_json()?);
    let count = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    for (s, (control, data)) in cluster.shards.iter().enumerate() {
        let objects = ControlClient::connect(*control)?.status()?;
        let crashed = objects.iter().filter(|o| o.crashed).count();
        println!(
            "shard {s} @ {control} (data {data}): {}/{} objects serving",
            objects.len() - crashed,
            objects.len()
        );
        for o in &objects {
            println!(
                "  object {}: {}, {} envelope(s) served",
                o.id.0,
                if o.crashed { "CRASHED" } else { "serving" },
                o.served
            );
        }
        let fast = count(&format!("{}.{s}", names::KV_READS_FAST));
        let slow = count(&format!("{}.{s}", names::KV_READS_SLOW));
        println!("  reads: {fast} fast / {slow} slow");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor metrics: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let doc = ControlClient::connect(cluster.ops)?.metrics_json()?;
    if flags.has("json") {
        print!("{doc}");
        return Ok(ExitCode::SUCCESS);
    }
    let counters = flat_counters(&doc);
    let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    println!("counters:");
    for (name, value) in &counters {
        println!("  {name:width$}  {value}");
    }
    let hists = parse_hist_lines(&doc);
    if !hists.is_empty() {
        println!("histograms (\u{b5}s):");
        let w = hists.iter().map(|h| h.name.len()).max().unwrap_or(0);
        println!(
            "  {:w$}  {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        );
        for h in &hists {
            println!(
                "  {:w$}  {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
                h.name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    for r in parse_ring_lines(&doc) {
        let live: Vec<_> = r.slots.iter().filter(|s| s.count > 0).collect();
        match live.last() {
            None => println!(
                "ring {}: no samples yet (period {}s)",
                r.name, r.period_secs
            ),
            Some(last) => println!(
                "ring {}: {} live slot(s), period {}s, last slot {} op(s) mean {:.0}\u{b5}s",
                r.name,
                live.len(),
                r.period_secs,
                last.count,
                last.mean
            ),
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// Readers for the histogram/ring lines of `rastor-metrics/v1`. Like
// `flat_counters`, these lean on the one-metric-per-line discipline
// instead of a JSON parser: a histogram line is the only kind carrying
// `"p99":`, a ring line the only kind carrying `"period_secs":`.

struct HistLine {
    name: String,
    count: u64,
    mean: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    max: u64,
}

fn parse_hist_lines(doc: &str) -> Vec<HistLine> {
    doc.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.contains("\"p99\":") {
                return None;
            }
            Some(HistLine {
                name: line.strip_prefix('"')?.split('"').next()?.to_string(),
                count: field(line, "count")?.parse().ok()?,
                mean: field(line, "mean")?.parse().ok()?,
                p50: field(line, "p50")?.parse().ok()?,
                p95: field(line, "p95")?.parse().ok()?,
                p99: field(line, "p99")?.parse().ok()?,
                max: field(line, "max")?.parse().ok()?,
            })
        })
        .collect()
}

struct RingSlotLine {
    tick: u64,
    count: u64,
    mean: f64,
}

struct RingLine {
    name: String,
    period_secs: u64,
    slots: Vec<RingSlotLine>,
}

fn parse_ring_lines(doc: &str) -> Vec<RingLine> {
    doc.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.contains("\"period_secs\":") {
                return None;
            }
            let name = line.strip_prefix('"')?.split('"').next()?.to_string();
            let period_secs = field(line, "period_secs")?.parse().ok()?;
            let body = line.split("\"slots\":[").nth(1)?.strip_suffix("]}")?;
            let mut slots = Vec::new();
            if !body.is_empty() {
                for entry in body
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .split("],[")
                {
                    // Slot shape: [tick, count, min, mean, max].
                    let f: Vec<&str> = entry.split(',').collect();
                    if f.len() == 5 {
                        slots.push(RingSlotLine {
                            tick: f[0].parse().ok()?,
                            count: f[1].parse().ok()?,
                            mean: f[3].parse().ok()?,
                        });
                    }
                }
            }
            slots.sort_by_key(|s| s.tick);
            Some(RingLine {
                name,
                period_secs,
                slots,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// watch: a refreshing terminal view over the deployment's `TimeRing`s —
// one sparkline column per ring slot, newest on the right.

fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let peak = vals.iter().copied().fold(0.0f64, f64::max);
    vals.iter()
        .map(|&v| {
            if peak <= 0.0 {
                '\u{b7}'
            } else {
                let idx = ((v / peak) * 7.0).round();
                BARS[(idx as usize).min(7)]
            }
        })
        .collect()
}

fn cmd_watch(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let interval = match flags.num("interval", 2) {
        Ok(v) => v.max(1),
        Err(e) => return Ok(usage_err(e)),
    };
    let once = flags.has("once");
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor watch: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let mut prev_frames: Option<u64> = None;
    loop {
        let doc = ControlClient::connect(cluster.ops)?.metrics_json()?;
        let counters = flat_counters(&doc);
        let count = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let frames_in = count(names::NET_FRAMES_IN);
        let rate = prev_frames
            .map(|p| format!(", {}/s", frames_in.saturating_sub(p) / interval))
            .unwrap_or_default();
        println!(
            "watch @ {}: frames in {frames_in}{rate}, out {}, slow-ops captured {}",
            cluster.ops,
            count(names::NET_FRAMES_OUT),
            count(names::TRACE_SLOW_OPS_CAPTURED),
        );
        for r in parse_ring_lines(&doc) {
            let live: Vec<&RingSlotLine> = r.slots.iter().filter(|s| s.count > 0).collect();
            if live.is_empty() {
                println!("  {}: no samples yet", r.name);
                continue;
            }
            let counts: Vec<f64> = live.iter().map(|s| s.count as f64).collect();
            let means: Vec<f64> = live.iter().map(|s| s.mean).collect();
            let peak_ops = counts.iter().copied().fold(0.0f64, f64::max);
            let peak_us = means.iter().copied().fold(0.0f64, f64::max);
            println!("  {} (per {}s slot):", r.name, r.period_secs);
            println!(
                "    ops/slot {}  last {} peak {:.0}",
                sparkline(&counts),
                live.last().map_or(0, |s| s.count),
                peak_ops
            );
            println!(
                "    mean \u{b5}s  {}  last {:.0} peak {:.0}",
                sparkline(&means),
                live.last().map_or(0.0, |s| s.mean),
                peak_us
            );
        }
        if once {
            return Ok(ExitCode::SUCCESS);
        }
        prev_frames = Some(frames_in);
        std::thread::sleep(Duration::from_secs(interval));
    }
}

// ---------------------------------------------------------------------------
// trace: fetch the deployment's captured slow-op traces and render each
// as an indented span tree (a span is nested under any span whose
// interval strictly contains it).

struct SpanLine {
    name: String,
    detail: u64,
    start_us: u64,
    end_us: u64,
}

struct TraceLine {
    trace: u64,
    latency_us: u64,
    dropped: u64,
    spans: Vec<SpanLine>,
}

fn parse_trace_lines(doc: &str) -> Vec<TraceLine> {
    doc.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"trace\":") {
                return None;
            }
            let body = line.split("\"spans\":[").nth(1)?.strip_suffix("]}")?;
            let mut spans = Vec::new();
            if !body.is_empty() {
                for entry in body
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .split("],[")
                {
                    // Span shape: ["name", detail, start_us, end_us].
                    let f: Vec<&str> = entry.split(',').collect();
                    if f.len() == 4 {
                        spans.push(SpanLine {
                            name: f[0].trim_matches('"').to_string(),
                            detail: f[1].parse().ok()?,
                            start_us: f[2].parse().ok()?,
                            end_us: f[3].parse().ok()?,
                        });
                    }
                }
            }
            Some(TraceLine {
                trace: field(line, "trace")?.parse().ok()?,
                latency_us: field(line, "latency_us")?.parse().ok()?,
                dropped: field(line, "dropped")?.parse().ok()?,
                spans,
            })
        })
        .collect()
}

fn cmd_trace(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor trace: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let doc = ControlClient::connect(cluster.ops)?.traces_json()?;
    if flags.has("json") {
        print!("{doc}");
        return Ok(ExitCode::SUCCESS);
    }
    let threshold: u64 = field(&doc, "threshold_us")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let sample: u64 = field(&doc, "sample_every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let enabled = doc.contains("\"enabled\": true");
    let traces = parse_trace_lines(&doc);
    println!(
        "tracing {}, slow-op threshold {threshold}\u{b5}s, sampling 1 in {sample}, {} captured trace(s)",
        if enabled { "on" } else { "off" },
        traces.len()
    );
    for t in &traces {
        let t0 = t.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        println!(
            "trace {:#x}: latency {}\u{b5}s, {} span(s){}",
            t.trace,
            t.latency_us,
            t.spans.len(),
            if t.dropped > 0 {
                format!(", {} dropped", t.dropped)
            } else {
                String::new()
            }
        );
        let mut order: Vec<usize> = (0..t.spans.len()).collect();
        order.sort_by_key(|&i| (t.spans[i].start_us, std::cmp::Reverse(t.spans[i].end_us)));
        for &i in &order {
            let s = &t.spans[i];
            let depth = t
                .spans
                .iter()
                .filter(|o| {
                    o.start_us <= s.start_us
                        && o.end_us >= s.end_us
                        && (o.start_us, o.end_us) != (s.start_us, s.end_us)
                })
                .count();
            println!(
                "  {:>8} ..{:>8}  {:indent$}{} (detail {}, {}\u{b5}s)",
                s.start_us.saturating_sub(t0),
                s.end_us.saturating_sub(t0),
                "",
                s.name,
                s.detail,
                s.end_us.saturating_sub(s.start_us),
                indent = depth * 2
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// restart-object / partition-toggle

enum AdminVerb {
    Restart,
    Partition,
}

fn cmd_admin(args: &[String], verb: AdminVerb) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let cmd = match &verb {
        AdminVerb::Restart => {
            let (shard, object) = match (flags.required_num("shard"), flags.required_num("object"))
            {
                (Ok(s), Ok(o)) => (s as u32, o as u32),
                (Err(e), _) | (_, Err(e)) => return Ok(usage_err(e)),
            };
            AdminCmd::RestartObject { shard, object }
        }
        AdminVerb::Partition => {
            let shard = match flags.required_num("shard") {
                Ok(s) => s as u32,
                Err(e) => return Ok(usage_err(e)),
            };
            let on = match flags.positional.first().map(String::as_str) {
                Some("on") => true,
                Some("off") => false,
                other => {
                    return Ok(usage_err(format!(
                        "partition-toggle wants a trailing on|off, got {other:?}"
                    )))
                }
            };
            AdminCmd::Partition { shard, on }
        }
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let outcome = ControlClient::connect(cluster.ops)?.admin(cmd)?;
    println!("{}", outcome.detail);
    Ok(if outcome.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---------------------------------------------------------------------------
// bench

fn cmd_bench(args: &[String]) -> Result<ExitCode> {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return Ok(usage_err(e)),
    };
    let (ops, depth, put_pct, keys, threads) = match (
        flags.num("ops", 200),
        flags.num("depth", 8),
        flags.num("put-pct", 10),
        flags.num("keys", 32),
        flags.num("threads", 4),
    ) {
        (Ok(o), Ok(d), Ok(p), Ok(k), Ok(t)) => (o, d as u32, p as u32, k as u32, t as u32),
        (Err(e), ..)
        | (_, Err(e), ..)
        | (_, _, Err(e), _, _)
        | (_, _, _, Err(e), _)
        | (_, _, _, _, Err(e)) => return Ok(usage_err(e)),
    };
    let cluster = match parse_cluster_file(flags.file()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rastor bench: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    // Trace ids are minted client-side (the driver owns the op), so a
    // bench that should exercise the cluster's span capture has to turn
    // its own recorder on; the servers tag whatever ids arrive on the
    // wire. Off by default — bench doubles as the perf tool.
    match flags.num("trace-sample", 0) {
        Ok(0) => {}
        Ok(n) => {
            let rec = rastor::obs::trace::global();
            rec.set_sample_every(n);
            rec.set_enabled(true);
        }
        Err(e) => return Ok(usage_err(e)),
    }
    // Connect a store of our own to the cluster's data plane; the local
    // global registry collects this process's kv-seam metrics, which we
    // report back to the deployment afterwards.
    let transports: Vec<Box<dyn Transport<Req, Rep> + Send + Sync>> = cluster
        .shards
        .iter()
        .map(|(_, data)| {
            NetCluster::connect(&[*data])
                .map(|c| Box::new(c) as Box<dyn Transport<Req, Rep> + Send + Sync>)
        })
        .collect::<Result<_>>()?;
    let registry = Registry::global();
    let store = ShardedKvStore::over_transports(
        cluster.t,
        cluster.handles.max(threads),
        cluster.fast_reads,
        transports,
        Arc::new(InMemory),
        Some(Arc::clone(&registry)),
    )?;
    let mut cfg =
        WorkloadCfg::closed("cli-bench", cluster.shards.len(), threads, put_pct).pipelined(depth);
    cfg.keys = keys;
    cfg.ops_per_thread = ops;
    cfg.fast_reads = cluster.fast_reads;
    seed_keys(&store, keys);
    let row = measure_store(&store, &cfg);
    println!(
        "{}: {} ops ({} errors) in {:.2}s = {:.0} ops/s",
        cfg.name, row.ops, row.errors, row.elapsed_secs, row.ops_per_sec
    );
    if let Some(l) = &row.put_lat_us {
        println!(
            "  put latency µs: mean {:.0} p50 {} p95 {} max {}",
            l.mean, l.p50, l.p95, l.max
        );
    }
    if let Some(l) = &row.get_lat_us {
        println!(
            "  get latency µs: mean {:.0} p50 {} p95 {} max {}",
            l.mean, l.p50, l.p95, l.max
        );
    }
    if let Some(r) = row.get_rounds_mean {
        println!("  get rounds mean: {r:.2}");
    }
    // Report this client's per-shard read-path counts to the shard that
    // earned them, as plain counters (`kv.reads_fast.<s>`): `rastor
    // status` then shows them next to the server-side object tallies.
    let fast = registry.counter_vec(names::KV_READS_FAST, cluster.shards.len());
    let slow = registry.counter_vec(names::KV_READS_SLOW, cluster.shards.len());
    for (s, (control, _)) in cluster.shards.iter().enumerate() {
        let counts = vec![
            (format!("{}.{s}", names::KV_READS_FAST), fast.get(s)),
            (format!("{}.{s}", names::KV_READS_SLOW), slow.get(s)),
        ];
        ControlClient::connect(*control)?.report(counts)?;
        println!(
            "  shard {s}: {} fast / {} slow reads (reported to {control})",
            fast.get(s),
            slow.get(s)
        );
    }
    Ok(ExitCode::SUCCESS)
}
