//! # rastor — Robust Atomic Storage
//!
//! A reproduction of *"The Complexity of Robust Atomic Storage"* (Dobre,
//! Guerraoui, Majuntke, Suri, Vukolić — PODC 2011): latency-optimal
//! Byzantine-tolerant read/write register emulations plus the paper's
//! lower-bound machinery as executable artifacts.
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`common`] — ids, timestamps, values, quorum arithmetic;
//! * [`sim`] — deterministic discrete-event simulator and thread runtime;
//! * [`core`] — the register protocols (ABD, Byzantine regular, secret-token
//!   regular, the regular→atomic transformation) and history checkers;
//! * [`lowerbound`] — the executable read/write lower-bound constructions;
//! * [`kv`] — a key-value store built on the atomic registers;
//! * [`store`] — the durability subsystem: write-ahead log, compacting
//!   snapshots, and kill-then-recover object restarts;
//! * [`net`] — the TCP transport: wire codec, socket-backed clusters, and
//!   the fault-injecting chaos proxy;
//! * [`obs`] — the observability spine: metrics registry, RRD-style time
//!   rings, and the exported-metric manifest;
//! * [`mod@bench`] — the experiment drivers behind the `exp` tables;
//! * [`check`] — the exhaustive schedule explorer.
//!
//! See `examples/` for runnable entry points, `DESIGN.md` for the
//! paper-to-module map, and `docs/OPERATIONS.md` for running a live
//! cluster with the `rastor` CLI.

pub use rastor_bench as bench;
pub use rastor_check as check;
pub use rastor_common as common;
pub use rastor_core as core;
pub use rastor_kv as kv;
pub use rastor_lowerbound as lowerbound;
pub use rastor_net as net;
pub use rastor_obs as obs;
pub use rastor_sim as sim;
pub use rastor_store as store;
