//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework — the subset this workspace uses: the
//! `proptest!` macro, `prop_assert*` macros, integer-range strategies, and
//! `collection::vec`. Deterministic (seed derived from the test name), no
//! shrinking; a failing case reports its case number and message via panic.
//! See `vendor/README.md` for scope and how to swap the real crate back in.

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding `Vec`s of `element` with a length drawn from
    /// `size` (half-open, like proptest's `SizeRange` from a range).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The case-execution machinery behind the `proptest!` macro.
pub mod test_runner {
    /// A failed property case, produced by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a of the test name).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `body` for [`cases`] deterministic cases, panicking on the first
    /// failed case with its index and message.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let n = cases();
        for case in 0..n {
            if let Err(e) = body(&mut rng) {
                panic!("property {name} failed at case {case}/{n}: {e}");
            }
        }
    }
}

/// Define property tests, mirroring `proptest::proptest!`: each function's
/// arguments are drawn from their strategies for a number of random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fallible assertion: fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 1u64..100) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..100).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u64..8, 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 8));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_surface_case_number() {
        crate::test_runner::run("always_fails", |rng| {
            let x = (0u64..10).sample(rng);
            crate::prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }
}
