//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness — just enough surface for this workspace's benches to
//! compile and produce useful timings without a registry. See
//! `vendor/README.md` for scope and for how to swap the real crate back in.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{id:<50} time: [{min:>12.2?} {mean:>12.2?} {max:>12.2?}]");
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    report(id, &b.samples);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Run an unparameterized benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Finish the group (a no-op here; present for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose_name_and_parameter() {
        let id = BenchmarkId::new("f", 3);
        assert_eq!(id.id, "f/3");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 0), &(), |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // 3 warm-up + 4 timed.
        assert_eq!(runs, 7);
    }
}
