#!/usr/bin/env python3
"""Rebuild scripts/bench_baseline.json from fresh quick-mode runs.

Merges the result rows of BENCH_kv.json, BENCH_net.json, BENCH_store.json
and BENCH_obs.json (produced by `exp t6 --quick` / `t7 --quick` /
`t8 --quick` / `t10 --quick` in the repo root) into the single baseline
document CI's check_bench gate compares against. The gate parses
line-by-line, but the merged file is kept valid JSON for human tooling.

Each source document must carry the exact schema version this script
expects: a mismatched schema means the emitters changed shape and the
baseline would silently mix incompatible rows — refuse instead, and make
the operator pass --force (after checking the rows by hand) to override.

Recovery rows (any row carrying a `recover_ms` field) are excluded from
the baseline on purpose: replay rate and restart latency are disk- and
machine-bound, not service-delay-bound, so a cross-machine throughput
ratio on them is noise. check_bench gates them structurally instead
(present + positive).
"""

import json
import sys

SOURCES = {
    "BENCH_kv.json": "rastor-kv-throughput/v3",
    "BENCH_net.json": "rastor-net-throughput/v2",
    "BENCH_store.json": "rastor-store-throughput/v1",
    "BENCH_obs.json": "rastor-obs-overhead/v1",
}
TARGET = "scripts/bench_baseline.json"


def schema_of(path: str, doc: str) -> str:
    for line in doc.splitlines():
        if '"schema"' in line:
            return line.split(":", 1)[1].strip().strip(",").strip('"')
    sys.exit(f"{path}: no schema line — not a bench document")


def rows(path: str, expected_schema: str, force: bool) -> list[str]:
    with open(path) as f:
        doc = f.read()
    found_schema = schema_of(path, doc)
    if found_schema != expected_schema:
        msg = (
            f"{path}: schema {found_schema!r} does not match the expected "
            f"{expected_schema!r} — the emitter changed shape; refusing to "
            f"merge (re-check the rows, then pass --force to override)"
        )
        if not force:
            sys.exit(msg)
        print(f"WARNING: {msg.replace('refusing to merge', 'merging anyway')}")
    found = [
        line.rstrip().rstrip(",")
        for line in doc.splitlines()
        if '"name"' in line and '"recover_ms"' not in line
    ]
    if not found:
        sys.exit(f"{path}: no result rows found — run the exp table first")
    return found


def main() -> None:
    force = "--force" in sys.argv[1:]
    merged = [
        row
        for path, expected_schema in SOURCES.items()
        for row in rows(path, expected_schema, force)
    ]
    out = ["{", '"schema": "rastor-bench-baseline/v1",', '"quick": true,', '"results": [']
    out += [row + ("," if i + 1 < len(merged) else "") for i, row in enumerate(merged)]
    out += ["]", "}"]
    text = "\n".join(out) + "\n"
    json.loads(text)  # the baseline must stay machine-readable as real JSON
    with open(TARGET, "w") as f:
        f.write(text)
    print(f"wrote {TARGET} ({len(merged)} rows)")


if __name__ == "__main__":
    main()
