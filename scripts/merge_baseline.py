#!/usr/bin/env python3
"""Rebuild scripts/bench_baseline.json from fresh quick-mode runs.

Merges the result rows of BENCH_kv.json and BENCH_net.json (both produced
by `exp t6 --quick` / `exp t7 --quick` in the repo root) into the single
baseline document CI's check_bench gate compares against. The gate parses
line-by-line, but the merged file is kept valid JSON for human tooling.
"""

import json
import sys

SOURCES = ["BENCH_kv.json", "BENCH_net.json"]
TARGET = "scripts/bench_baseline.json"


def rows(path: str) -> list[str]:
    with open(path) as f:
        doc = f.read()
    found = [line.rstrip().rstrip(",") for line in doc.splitlines() if '"name"' in line]
    if not found:
        sys.exit(f"{path}: no result rows found — run the exp table first")
    return found


def main() -> None:
    merged = [row for path in SOURCES for row in rows(path)]
    out = ["{", '"schema": "rastor-bench-baseline/v1",', '"quick": true,', '"results": [']
    out += [row + ("," if i + 1 < len(merged) else "") for i, row in enumerate(merged)]
    out += ["]", "}"]
    text = "\n".join(out) + "\n"
    json.loads(text)  # the baseline must stay machine-readable as real JSON
    with open(TARGET, "w") as f:
        f.write(text)
    print(f"wrote {TARGET} ({len(merged)} rows)")


if __name__ == "__main__":
    main()
