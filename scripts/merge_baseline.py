#!/usr/bin/env python3
"""Rebuild scripts/bench_baseline.json from fresh quick-mode runs.

Merges the result rows of BENCH_kv.json, BENCH_net.json and
BENCH_store.json (produced by `exp t6 --quick` / `t7 --quick` /
`t8 --quick` in the repo root) into the single baseline document CI's
check_bench gate compares against. The gate parses line-by-line, but the
merged file is kept valid JSON for human tooling.

Recovery rows (any row carrying a `recover_ms` field) are excluded from
the baseline on purpose: replay rate and restart latency are disk- and
machine-bound, not service-delay-bound, so a cross-machine throughput
ratio on them is noise. check_bench gates them structurally instead
(present + positive).
"""

import json
import sys

SOURCES = ["BENCH_kv.json", "BENCH_net.json", "BENCH_store.json"]
TARGET = "scripts/bench_baseline.json"


def rows(path: str) -> list[str]:
    with open(path) as f:
        doc = f.read()
    found = [
        line.rstrip().rstrip(",")
        for line in doc.splitlines()
        if '"name"' in line and '"recover_ms"' not in line
    ]
    if not found:
        sys.exit(f"{path}: no result rows found — run the exp table first")
    return found


def main() -> None:
    merged = [row for path in SOURCES for row in rows(path)]
    out = ["{", '"schema": "rastor-bench-baseline/v1",', '"quick": true,', '"results": [']
    out += [row + ("," if i + 1 < len(merged) else "") for i, row in enumerate(merged)]
    out += ["]", "}"]
    text = "\n".join(out) + "\n"
    json.loads(text)  # the baseline must stay machine-readable as real JSON
    with open(TARGET, "w") as f:
        f.write(text)
    print(f"wrote {TARGET} ({len(merged)} rows)")


if __name__ == "__main__":
    main()
