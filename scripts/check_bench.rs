//! Perf-regression gate for the kv throughput trajectory.
//!
//! Compares a freshly produced `BENCH_kv.json` against the committed
//! baseline and fails (exit 1) if any workload's `ops_per_sec` fell below
//! `baseline / tolerance`, or if a baseline workload is missing from the
//! current run. The tolerance is deliberately generous (default 2×): the
//! gate exists to catch gross regressions — an accidentally serialized
//! shard pool, a lost quorum fast path — not scheduler noise. The
//! workloads are service-delay-bound (see `crates/bench/src/workload.rs`),
//! which keeps absolute numbers comparable across machines.
//!
//! Understands the `rastor-kv-throughput/v3` schema (v2's per-row `depth`
//! plus `fast_reads` + `get_rounds_mean`), the `rastor-net-throughput/v2`
//! schema (v1's per-row `transport` plus `conns`, the open-connection
//! sweep axis) and the `rastor-store-throughput/v1` schema (per-row
//! `durability` + optional `recover_ms`), and gates the
//! structural claims of all three outright: sharding must win (`s4-X` >
//! `s1-X`), pipelining must win (`X-dN` > `X` at equal shard count; rows
//! missing `depth` are treated as depth 1), the fast read path must
//! actually engage (`X-fast` rows must average strictly fewer rounds per
//! get than their slow twin `X` — a fast row still paying 4 rounds means
//! the confirmation certificate never fires), the chaos proxy must
//! actually bite (`chaos-X` < its `tcp-X` twin — a chaos row matching
//! plain tcp means no faults were injected), the connection sweep must
//! hold up (among the `-c<conns>` rows the largest pool must sustain at
//! least `CONNS_TPUT_FLOOR` of the smallest pool's throughput and stay
//! within `CONNS_LAT_CEIL` of its p50 latencies — the reactor's claim
//! that open connections cost poll-set slots, not threads), every
//! `wal-X` durability row
//! must have its `mem-X` twin (and vice versa — a missing twin means half
//! the comparison silently stopped running), and a store document must
//! carry measured recovery times (`recover_ms` > 0 on every
//! `restart-*`/`replay-*` row, at least one such row present). The
//! `rastor-obs-overhead/v1` schema (per-row `metrics`/`tracing` arm
//! labels, one row per twin pair carrying its medianed `overhead_pct`)
//! adds the observability gates: recording metrics must cost less than
//! `OVERHEAD_GATE_PCT` percent of throughput and the span recorder less
//! than `TRACE_OVERHEAD_GATE_PCT` percent, and an obs document missing
//! either measured overhead means that off/on comparison silently
//! stopped running.
//!
//! Standalone by design — compiled directly in CI with no cargo project.
//! The current-run argument takes a comma-separated file list, so one
//! invocation gates every `BENCH_*.json` document against one merged
//! baseline:
//!
//! ```console
//! rustc --edition 2021 -O scripts/check_bench.rs -o /tmp/check_bench
//! /tmp/check_bench BENCH_kv.json,BENCH_net.json,BENCH_store.json,BENCH_obs.json scripts/bench_baseline.json [tolerance]
//! ```
//!
//! `--net-scale <current.json[,…]>` runs the connection-sweep gate alone,
//! with no baseline — the CI `net-scale` smoke step, which must be able
//! to gate a fresh `BENCH_net.json` before a baseline exists for it.
//!
//! Parsing relies on the emitters' line discipline (`bench_json` /
//! `net_bench_json` write one result object per line with `"name"` and
//! `"ops_per_sec"` fields), so no JSON parser is needed.

use std::process::ExitCode;

/// Ceiling on the measured metrics overhead, in percent — keep in sync
/// with `rastor_bench::obsbench::OVERHEAD_GATE_PCT`.
const OVERHEAD_GATE_PCT: f64 = 3.0;

/// Ceiling on the measured tracing overhead, in percent — keep in sync
/// with `rastor_bench::obsbench::TRACE_OVERHEAD_GATE_PCT`.
const TRACE_OVERHEAD_GATE_PCT: f64 = 5.0;

/// Throughput floor for the connection sweep: the largest `-c<conns>`
/// row must sustain at least this fraction of the smallest's ops/sec.
const CONNS_TPUT_FLOOR: f64 = 0.66;

/// p50 latency ceiling for the connection sweep: the largest `-c<conns>`
/// row must stay within this multiple of the smallest's put/get p50.
const CONNS_LAT_CEIL: f64 = 1.5;

/// Extract `"field":<value>` from a one-result JSON line.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// One parsed result row.
struct Row {
    name: String,
    /// Defaults to 1 for documents without the field.
    depth: u32,
    ops_per_sec: f64,
    /// Present on store-schema recovery rows only.
    recover_ms: Option<f64>,
    /// Present on kv-schema v3 rows; 0.0 when the mix ran no gets.
    get_rounds_mean: Option<f64>,
    /// Present on the obs-schema row that carries the medianed
    /// metrics-off vs metrics-on comparison.
    overhead_pct: Option<f64>,
    /// Present on net-schema v2 rows: open client connections (0 for
    /// in-process rows, > 0 on the sweep's `-c<conns>` rows).
    conns: Option<u32>,
    /// p50 latencies, for the connection-sweep latency gate.
    put_p50_us: Option<f64>,
    get_p50_us: Option<f64>,
}

fn results(doc: &str) -> Vec<Row> {
    doc.lines()
        .filter_map(|line| {
            let name = field(line, "name")?;
            let tput: f64 = field(line, "ops_per_sec")?.parse().ok()?;
            let depth: u32 = field(line, "depth").and_then(|d| d.parse().ok()).unwrap_or(1);
            let recover_ms: Option<f64> = field(line, "recover_ms").and_then(|r| r.parse().ok());
            let get_rounds_mean: Option<f64> =
                field(line, "get_rounds_mean").and_then(|r| r.parse().ok());
            let overhead_pct: Option<f64> =
                field(line, "overhead_pct").and_then(|r| r.parse().ok());
            let conns: Option<u32> = field(line, "conns").and_then(|c| c.parse().ok());
            let put_p50_us: Option<f64> = field(line, "put_p50_us").and_then(|p| p.parse().ok());
            let get_p50_us: Option<f64> = field(line, "get_p50_us").and_then(|p| p.parse().ok());
            Some(Row {
                name: name.to_string(),
                depth,
                ops_per_sec: tput,
                recover_ms,
                get_rounds_mean,
                overhead_pct,
                conns,
                put_p50_us,
                get_p50_us,
            })
        })
        .collect()
}

/// The connection-sweep gate: among the `-c<conns>` rows, the largest
/// pool must sustain at least [`CONNS_TPUT_FLOOR`] of the smallest
/// pool's throughput and stay within [`CONNS_LAT_CEIL`] of its p50
/// latencies. The reactor's scaling claim — idle connections cost a
/// poll-set slot, not a thread — and the gate that catches a readiness
/// loop gone O(conns²) or a worker pool silently serializing. Returns
/// `true` on failure.
fn conns_sweep_gate(current: &[Row]) -> bool {
    let mut failed = false;
    let mut sweep: Vec<&Row> = current
        .iter()
        .filter(|r| r.conns.unwrap_or(0) > 0 && r.name.contains("-c"))
        .collect();
    sweep.sort_by_key(|r| r.conns.unwrap_or(0));
    match (sweep.first(), sweep.last()) {
        (Some(small), Some(large)) if small.conns != large.conns => {
            let ratio = large.ops_per_sec / small.ops_per_sec.max(1e-9);
            let ok = ratio >= CONNS_TPUT_FLOOR;
            println!(
                "{} {:.1} vs {} {:.1}: {ratio:.2}x throughput at {}x the connections (floor {CONNS_TPUT_FLOOR}x) — {}",
                small.name,
                small.ops_per_sec,
                large.name,
                large.ops_per_sec,
                large.conns.unwrap_or(0) / small.conns.unwrap_or(1).max(1),
                if ok { "conns scale — ok" } else { "CONNECTIONS DEGRADE THROUGHPUT" }
            );
            failed |= !ok;
            for (what, s, l) in [
                ("put p50", small.put_p50_us, large.put_p50_us),
                ("get p50", small.get_p50_us, large.get_p50_us),
            ] {
                let (Some(s), Some(l)) = (s, l) else {
                    println!("{}: no measured {what} — UNGATED", large.name);
                    failed = true;
                    continue;
                };
                let ok = s > 0.0 && l <= s * CONNS_LAT_CEIL;
                println!(
                    "{what}: {s:.0}µs at {} conns vs {l:.0}µs at {} (ceiling {CONNS_LAT_CEIL}x) — {}",
                    small.conns.unwrap_or(0),
                    large.conns.unwrap_or(0),
                    if ok { "ok" } else { "CONNECTIONS DEGRADE LATENCY" }
                );
                failed |= !ok;
            }
        }
        _ => {
            println!("net document carries fewer than two -c<conns> sweep rows — UNGATED");
            failed = true;
        }
    }
    failed
}

/// One twin-overhead gate of the obs schema: the `<prefix>…` row that
/// carries the medianed `overhead_pct` (already clamped at zero by the
/// emitter) must stay below `limit` percent — above it, the "`what` is
/// near-free" claim has regressed. No such row means that off-vs-on
/// comparison silently stopped running. Returns `true` on failure.
fn overhead_gate(current: &[Row], prefix: &str, what: &str, limit: f64) -> bool {
    let mut failed = false;
    let mut rows = 0usize;
    for r in current {
        if !r.name.starts_with(prefix) {
            continue;
        }
        let Some(pct) = r.overhead_pct else { continue };
        rows += 1;
        let ok = pct < limit;
        println!(
            "{}: {what} overhead {pct:.2}% (gate < {limit}%) — {}",
            r.name,
            if ok {
                "ok".to_string()
            } else {
                format!("{} TOO EXPENSIVE", what.to_uppercase())
            }
        );
        failed |= !ok;
    }
    if rows == 0 {
        println!("obs document present but no {prefix}* row carrying overhead_pct — UNGATED");
        failed = true;
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    if args.get(1).map(String::as_str) == Some("--net-scale") {
        let Some(paths) = args.get(2) else {
            eprintln!("usage: check_bench --net-scale <current.json[,…]>");
            return ExitCode::from(2);
        };
        let current: Vec<Row> = paths.split(',').flat_map(|p| results(&read(p))).collect();
        if conns_sweep_gate(&current) {
            eprintln!("connection sweep gate failed");
            return ExitCode::FAILURE;
        }
        println!("connection sweep holds up");
        return ExitCode::SUCCESS;
    }
    if args.len() < 3 {
        eprintln!("usage: check_bench <current.json[,current2.json,…]> <baseline.json> [tolerance]");
        return ExitCode::from(2);
    }
    let tolerance: f64 = args
        .get(3)
        .map(|t| t.parse().expect("tolerance must be a number"))
        .unwrap_or(2.0);
    let docs: Vec<String> = args[1].split(',').map(&read).collect();
    let net_doc_present = docs.iter().any(|d| d.contains("rastor-net-throughput"));
    let store_doc_present = docs.iter().any(|d| d.contains("rastor-store-throughput"));
    let obs_doc_present = docs.iter().any(|d| d.contains("rastor-obs-overhead"));
    let current: Vec<Row> = docs.iter().flat_map(|doc| results(doc)).collect();
    let baseline = results(&read(&args[2]));
    if baseline.is_empty() {
        eprintln!("baseline {} contains no results", args[2]);
        return ExitCode::from(2);
    }

    let mut failed = false;
    println!(
        "{:<18} {:>12} {:>12} {:>8}   verdict (tolerance {tolerance}x)",
        "workload", "baseline", "current", "ratio"
    );
    for b in &baseline {
        match current.iter().find(|r| r.name == b.name) {
            None => {
                println!(
                    "{:<18} {:>12.1} {:>12} {:>8}   MISSING",
                    b.name, b.ops_per_sec, "-", "-"
                );
                failed = true;
            }
            Some(cur) => {
                let ratio = cur.ops_per_sec / b.ops_per_sec.max(1e-9);
                let ok = cur.ops_per_sec >= b.ops_per_sec / tolerance;
                println!(
                    "{:<18} {:>12.1} {:>12.1} {ratio:>7.2}x   {}",
                    b.name,
                    b.ops_per_sec,
                    cur.ops_per_sec,
                    if ok { "ok" } else { "REGRESSION" }
                );
                failed |= !ok;
            }
        }
    }
    for r in &current {
        if !baseline.iter().any(|b| b.name == r.name) {
            println!("{:<18} (new workload, no baseline — ok)", r.name);
        }
    }

    // Cross-row invariant: every sharded configuration must beat its
    // single-cluster twin outright (`s4-X` > `s1-X`). This is the
    // scaling claim itself — the per-row tolerance alone would admit a
    // fully serialized shard pool that merely matches single-cluster
    // throughput. Gated at depth 1 only: pipelined rows amortize the
    // per-envelope service delay better the fewer shards a batch spans,
    // so a 4-thread depth-8 run on 1 shard can legitimately match 4
    // shards — the pipelining gate below covers those rows instead.
    for r in &current {
        if r.depth > 1 {
            continue;
        }
        let Some(rest) = r.name.strip_prefix("s1-") else {
            continue;
        };
        let sharded_name = format!("s4-{rest}");
        if let Some(sharded) = current.iter().find(|c| c.name == sharded_name) {
            let ok = sharded.ops_per_sec > r.ops_per_sec;
            println!(
                "{} {:.1} vs {sharded_name} {:.1}: {}",
                r.name,
                r.ops_per_sec,
                sharded.ops_per_sec,
                if ok { "sharding wins — ok" } else { "NO SPEEDUP" }
            );
            failed |= !ok;
        }
    }

    // Cross-row invariant for the pipelining dimension: every `X-dN` row
    // (depth N > 1) must beat its closed-loop twin `X` at the same shard
    // count — keeping many ops in flight has to out-run one-at-a-time, or
    // the driver is serializing the pipeline.
    for r in &current {
        if r.depth <= 1 {
            continue;
        }
        let suffix = format!("-d{}", r.depth);
        let Some(twin) = r.name.strip_suffix(suffix.as_str()) else {
            continue;
        };
        match current.iter().find(|c| c.name == twin && c.depth == 1) {
            None => {
                println!("{} has no depth-1 twin {twin} — UNGATED", r.name);
                failed = true;
            }
            Some(closed) => {
                let ok = r.ops_per_sec > closed.ops_per_sec;
                println!(
                    "{twin} {:.1} vs {} {:.1}: {}",
                    closed.ops_per_sec,
                    r.name,
                    r.ops_per_sec,
                    if ok { "pipelining wins — ok" } else { "NO SPEEDUP" }
                );
                failed |= !ok;
            }
        }
    }
    // Cross-row invariant for the fast read path: an `X-fast` row must
    // average strictly fewer rounds per get than its slow twin `X`. Round
    // counts are deterministic (the automaton reports how many message
    // rounds each read took), so unlike a latency comparison this gate is
    // immune to scheduler noise: a fast row whose mean matches the slow
    // twin's means the confirmation certificate never fired and every
    // read fell back to the 4-round path.
    for r in &current {
        let Some(twin) = r.name.strip_suffix("-fast") else {
            continue;
        };
        let Some(fast_mean) = r.get_rounds_mean.filter(|m| *m > 0.0) else {
            println!("{}: no measured get rounds — UNGATED", r.name);
            failed = true;
            continue;
        };
        match current.iter().find(|c| c.name == twin) {
            None => {
                println!("{} has no slow twin {twin} — UNGATED", r.name);
                failed = true;
            }
            Some(slow) => {
                let slow_mean = slow.get_rounds_mean.unwrap_or(0.0);
                let ok = slow_mean > 0.0 && fast_mean < slow_mean;
                println!(
                    "{twin} {slow_mean:.3} rnds vs {} {fast_mean:.3} rnds: {}",
                    r.name,
                    if ok {
                        "fast reads save rounds — ok"
                    } else {
                        "FAST PATH NOT ENGAGING"
                    }
                );
                failed |= !ok;
            }
        }
    }
    // Cross-row invariant for the net-transport matrix: a `chaos-X` row
    // must run strictly slower than its `tcp-X` twin — the proxy adds a
    // fixed per-frame delay on an otherwise identical deployment, so a
    // chaos row that keeps up with plain tcp means the injection is not
    // happening (and the chaos soak tests are testing nothing).
    for r in &current {
        let Some(rest) = r.name.strip_prefix("chaos-") else {
            continue;
        };
        let twin = format!("tcp-{rest}");
        match current.iter().find(|c| c.name == twin) {
            None => {
                println!("{} has no tcp twin {twin} — UNGATED", r.name);
                failed = true;
            }
            Some(tcp) => {
                let ok = r.ops_per_sec < tcp.ops_per_sec;
                println!(
                    "{twin} {:.1} vs {} {:.1}: {}",
                    tcp.ops_per_sec,
                    r.name,
                    r.ops_per_sec,
                    if ok {
                        "chaos bites — ok"
                    } else {
                        "CHAOS NOT INJECTING"
                    }
                );
                failed |= !ok;
            }
        }
    }
    // Cross-row invariant for the connection sweep: open connections
    // must cost poll-set slots, not throughput (gated whenever a net
    // document is in the current set — a net document without sweep rows
    // means the sweep silently stopped running).
    if net_doc_present {
        failed |= conns_sweep_gate(&current);
    }
    // Cross-row invariant for the durability matrix: every `wal-X` row
    // must have its `mem-X` twin and vice versa — a missing twin means
    // half the durability comparison silently stopped running. The ratio
    // is informational (WAL appends are cheap next to the emulated object
    // service delay, so no direction is asserted); regressions are caught
    // by the per-row baseline gate above.
    for r in &current {
        let (twin, what) = if let Some(rest) = r.name.strip_prefix("wal-") {
            (format!("mem-{rest}"), "in-memory")
        } else if let Some(rest) = r.name.strip_prefix("mem-") {
            (format!("wal-{rest}"), "wal-backed")
        } else {
            continue;
        };
        match current.iter().find(|c| c.name == twin) {
            None => {
                println!("{} has no {what} twin {twin} — UNGATED", r.name);
                failed = true;
            }
            Some(t) if r.name.starts_with("wal-") => {
                println!(
                    "{twin} {:.1} vs {} {:.1}: wal at {:.2}x of mem — ok",
                    t.ops_per_sec,
                    r.name,
                    r.ops_per_sec,
                    r.ops_per_sec / t.ops_per_sec.max(1e-9)
                );
            }
            Some(_) => {}
        }
    }
    // Recovery gate: a store document must measure recovery. Every
    // `restart-*`/`replay-*` row needs a positive `recover_ms`, and at
    // least one such row must exist when the store schema is present.
    if store_doc_present {
        let mut recovery_rows = 0usize;
        for r in &current {
            if !(r.name.starts_with("restart-") || r.name.starts_with("replay-")) {
                continue;
            }
            recovery_rows += 1;
            match r.recover_ms {
                Some(ms) if ms > 0.0 => {
                    println!("{}: recovered in {ms:.2} ms — ok", r.name);
                }
                _ => {
                    println!("{}: NO MEASURED RECOVERY", r.name);
                    failed = true;
                }
            }
        }
        if recovery_rows == 0 {
            println!("store document present but no restart-*/replay-* rows — UNGATED");
            failed = true;
        }
    }
    // Observability gates: recording metrics and recording spans must
    // both be near-free, each judged by its own twin pair and ceiling.
    if obs_doc_present {
        failed |= overhead_gate(&current, "obs-", "metrics", OVERHEAD_GATE_PCT);
        failed |= overhead_gate(&current, "trace-on-", "tracing", TRACE_OVERHEAD_GATE_PCT);
    }
    if failed {
        eprintln!("gross perf regression detected (>{tolerance}x below baseline)");
        return ExitCode::FAILURE;
    }
    println!("perf within {tolerance}x of baseline");
    ExitCode::SUCCESS
}
