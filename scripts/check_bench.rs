//! Perf-regression gate for the kv throughput trajectory.
//!
//! Compares a freshly produced `BENCH_kv.json` against the committed
//! baseline and fails (exit 1) if any workload's `ops_per_sec` fell below
//! `baseline / tolerance`, or if a baseline workload is missing from the
//! current run. The tolerance is deliberately generous (default 2×): the
//! gate exists to catch gross regressions — an accidentally serialized
//! shard pool, a lost quorum fast path — not scheduler noise. The
//! workloads are service-delay-bound (see `crates/bench/src/workload.rs`),
//! which keeps absolute numbers comparable across machines.
//!
//! Understands the `rastor-kv-throughput/v2` schema (v1 plus a per-row
//! `depth` field) and the `rastor-net-throughput/v1` schema (per-row
//! `transport`), and gates the structural claims of both outright:
//! sharding must win (`s4-X` > `s1-X`), pipelining must win (`X-dN` >
//! `X` at equal shard count; rows missing `depth` are treated as depth
//! 1), and the chaos proxy must actually bite (`chaos-X` < its `tcp-X`
//! twin — a chaos row matching plain tcp means no faults were injected).
//!
//! Standalone by design — compiled directly in CI with no cargo project.
//! The current-run argument takes a comma-separated file list, so one
//! invocation gates every `BENCH_*.json` document against one merged
//! baseline:
//!
//! ```console
//! rustc --edition 2021 -O scripts/check_bench.rs -o /tmp/check_bench
//! /tmp/check_bench BENCH_kv.json,BENCH_net.json scripts/bench_baseline.json [tolerance]
//! ```
//!
//! Parsing relies on the emitters' line discipline (`bench_json` /
//! `net_bench_json` write one result object per line with `"name"` and
//! `"ops_per_sec"` fields), so no JSON parser is needed.

use std::process::ExitCode;

/// Extract `"field":<value>` from a one-result JSON line.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// One parsed result row: `(name, depth, ops_per_sec)`; `depth` defaults
/// to 1 for v1 documents.
fn results(doc: &str) -> Vec<(String, u32, f64)> {
    doc.lines()
        .filter_map(|line| {
            let name = field(line, "name")?;
            let tput: f64 = field(line, "ops_per_sec")?.parse().ok()?;
            let depth: u32 = field(line, "depth").and_then(|d| d.parse().ok()).unwrap_or(1);
            Some((name.to_string(), depth, tput))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: check_bench <current.json[,current2.json,…]> <baseline.json> [tolerance]");
        return ExitCode::from(2);
    }
    let tolerance: f64 = args
        .get(3)
        .map(|t| t.parse().expect("tolerance must be a number"))
        .unwrap_or(2.0);
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let current: Vec<(String, u32, f64)> = args[1]
        .split(',')
        .flat_map(|path| results(&read(path)))
        .collect();
    let baseline = results(&read(&args[2]));
    if baseline.is_empty() {
        eprintln!("baseline {} contains no results", args[2]);
        return ExitCode::from(2);
    }

    let mut failed = false;
    println!(
        "{:<18} {:>12} {:>12} {:>8}   verdict (tolerance {tolerance}x)",
        "workload", "baseline", "current", "ratio"
    );
    for (name, _, base) in &baseline {
        match current.iter().find(|(n, _, _)| n == name) {
            None => {
                println!("{name:<18} {base:>12.1} {:>12} {:>8}   MISSING", "-", "-");
                failed = true;
            }
            Some((_, _, cur)) => {
                let ratio = cur / base.max(1e-9);
                let ok = *cur >= base / tolerance;
                println!(
                    "{name:<18} {base:>12.1} {cur:>12.1} {ratio:>7.2}x   {}",
                    if ok { "ok" } else { "REGRESSION" }
                );
                failed |= !ok;
            }
        }
    }
    for (name, _, _) in &current {
        if !baseline.iter().any(|(n, _, _)| n == name) {
            println!("{name:<18} (new workload, no baseline — ok)");
        }
    }

    // Cross-row invariant: every sharded configuration must beat its
    // single-cluster twin outright (`s4-X` > `s1-X`). This is the
    // scaling claim itself — the per-row tolerance alone would admit a
    // fully serialized shard pool that merely matches single-cluster
    // throughput. Gated at depth 1 only: pipelined rows amortize the
    // per-envelope service delay better the fewer shards a batch spans,
    // so a 4-thread depth-8 run on 1 shard can legitimately match 4
    // shards — the pipelining gate below covers those rows instead.
    for (name, depth, single) in &current {
        if *depth > 1 {
            continue;
        }
        let Some(rest) = name.strip_prefix("s1-") else {
            continue;
        };
        let sharded_name = format!("s4-{rest}");
        if let Some((_, _, sharded)) = current.iter().find(|(n, _, _)| *n == sharded_name) {
            let ok = sharded > single;
            println!(
                "{name} {single:.1} vs {sharded_name} {sharded:.1}: {}",
                if ok { "sharding wins — ok" } else { "NO SPEEDUP" }
            );
            failed |= !ok;
        }
    }

    // Cross-row invariant for the pipelining dimension: every `X-dN` row
    // (depth N > 1) must beat its closed-loop twin `X` at the same shard
    // count — keeping many ops in flight has to out-run one-at-a-time, or
    // the driver is serializing the pipeline.
    for (name, depth, piped) in &current {
        if *depth <= 1 {
            continue;
        }
        let suffix = format!("-d{depth}");
        let Some(twin) = name.strip_suffix(suffix.as_str()) else {
            continue;
        };
        match current.iter().find(|(n, d, _)| n == twin && *d == 1) {
            None => {
                println!("{name} has no depth-1 twin {twin} — UNGATED");
                failed = true;
            }
            Some((_, _, closed)) => {
                let ok = piped > closed;
                println!(
                    "{twin} {closed:.1} vs {name} {piped:.1}: {}",
                    if ok { "pipelining wins — ok" } else { "NO SPEEDUP" }
                );
                failed |= !ok;
            }
        }
    }
    // Cross-row invariant for the net-transport matrix: a `chaos-X` row
    // must run strictly slower than its `tcp-X` twin — the proxy adds a
    // fixed per-frame delay on an otherwise identical deployment, so a
    // chaos row that keeps up with plain tcp means the injection is not
    // happening (and the chaos soak tests are testing nothing).
    for (name, _, chaotic) in &current {
        let Some(rest) = name.strip_prefix("chaos-") else {
            continue;
        };
        let twin = format!("tcp-{rest}");
        match current.iter().find(|(n, _, _)| *n == twin) {
            None => {
                println!("{name} has no tcp twin {twin} — UNGATED");
                failed = true;
            }
            Some((_, _, tcp)) => {
                let ok = chaotic < tcp;
                println!(
                    "{twin} {tcp:.1} vs {name} {chaotic:.1}: {}",
                    if ok {
                        "chaos bites — ok"
                    } else {
                        "CHAOS NOT INJECTING"
                    }
                );
                failed |= !ok;
            }
        }
    }
    if failed {
        eprintln!("gross perf regression detected (>{tolerance}x below baseline)");
        return ExitCode::FAILURE;
    }
    println!("perf within {tolerance}x of baseline");
    ExitCode::SUCCESS
}
