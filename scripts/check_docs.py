#!/usr/bin/env python3
"""Link-check the repo's markdown docs and the metric reference.

Two gates, both about docs rotting against reality:

* every relative link/image in tracked *.md files must point at a file
  that exists (http(s)/mailto links and pure #anchors are skipped);
* every metric the binaries can emit (docs/metrics.json, generated from
  the compiled-in `rastor_obs::manifest`) must appear by name in the
  operator handbook docs/OPERATIONS.md — export a metric, document it.

Run from the repo root; CI runs it next to `cargo doc`, which covers the
rustdoc side of the same problem.
"""

import json
import pathlib
import re
import sys

MANIFEST = pathlib.Path("docs/metrics.json")
HANDBOOK = pathlib.Path("docs/OPERATIONS.md")

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"target", ".git", "vendor"}
# Retrieval dumps, not authored docs: their figure refs point at assets
# that were never part of this repo.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}


def md_files(root: pathlib.Path) -> list[pathlib.Path]:
    return [
        p
        for p in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in p.parts) and p.name not in SKIP_FILES
    ]


def undocumented_metrics() -> list[str]:
    manifest = json.loads(MANIFEST.read_text(encoding="utf-8"))
    handbook = HANDBOOK.read_text(encoding="utf-8")
    names = [m["name"] for m in manifest["metrics"]]
    missing = [
        f"{HANDBOOK}: exported metric `{name}` is not documented" for name in names if name not in handbook
    ]
    print(f"checked {len(names)} exported metrics against {HANDBOOK}")
    return missing


def main() -> None:
    root = pathlib.Path(".")
    bad: list[str] = []
    checked = 0
    for md in md_files(root):
        for target in LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            path = (md.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                bad.append(f"{md}: broken link -> {target}")
    print(f"checked {checked} relative links across {len(md_files(root))} markdown files")
    bad += undocumented_metrics()
    for b in bad:
        print(b)
    if bad:
        sys.exit(1)


if __name__ == "__main__":
    main()
