#!/usr/bin/env python3
"""Link-check the repo's markdown docs.

Scans every tracked *.md file for relative links/images and fails if a
target file does not exist (http(s)/mailto links and pure #anchors are
skipped — this gate is about repo-internal docs rotting, not the
internet). Run from the repo root; CI runs it next to `cargo doc`, which
covers the rustdoc side of the same problem.
"""

import pathlib
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"target", ".git", "vendor"}
# Retrieval dumps, not authored docs: their figure refs point at assets
# that were never part of this repo.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}


def md_files(root: pathlib.Path) -> list[pathlib.Path]:
    return [
        p
        for p in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in p.parts) and p.name not in SKIP_FILES
    ]


def main() -> None:
    root = pathlib.Path(".")
    bad: list[str] = []
    checked = 0
    for md in md_files(root):
        for target in LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            path = (md.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                bad.append(f"{md}: broken link -> {target}")
    for b in bad:
        print(b)
    print(f"checked {checked} relative links across {len(md_files(root))} markdown files")
    if bad:
        sys.exit(1)


if __name__ == "__main__":
    main()
