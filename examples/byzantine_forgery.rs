//! Byzantine fault injection: corrupt `t` objects with each stock adversary
//! (silence, amnesia, forged sky-high values, early crash) and verify the
//! unauthenticated atomic construction neither stalls nor returns anything
//! that was not genuinely written — then contrast with the naive 2-round
//! read at `S ≤ 4t`, which the paper's denial schedule provably breaks.
//!
//! Run with: `cargo run --example byzantine_forgery`

use rastor::common::{ObjectId, Value};
use rastor::core::{AdversaryKind, Protocol, StorageSystem, Workload};
use rastor::lowerbound::prop1::denial_attack;
use rastor::sim::FixedDelay;

fn main() {
    let t = 2;
    println!("== part 1: the 4-round atomic read shrugs off every adversary ==");
    for adversary in AdversaryKind::all() {
        let mut system = StorageSystem::new(Protocol::AtomicUnauth, t, 2).unwrap();
        let workload = Workload::default()
            .with_write(0, Value::from_u64(100))
            .with_write(60, Value::from_u64(200))
            .with_read(250, 0)
            .with_read(350, 1);
        // Corrupt the full budget: t objects run the adversary behavior.
        let corrupted = (0..t as u32)
            .map(|i| (ObjectId(i), StorageSystem::stock_adversary(adversary)))
            .collect();
        let result = system.run(Box::new(FixedDelay::new(1)), &workload, corrupted);
        let violations = result.history.check_atomic();
        assert_eq!(
            result.completions.len(),
            4,
            "wait-freedom under {adversary:?}"
        );
        assert!(violations.is_empty(), "{adversary:?}: {violations:?}");
        println!(
            "  {adversary:?}: all ops completed, reads = {:?} rounds, atomic ✓",
            result.read_rounds()
        );
    }

    println!("\n== part 2: the resilience boundary of Proposition 1 ==");
    for (s, t) in [(4usize, 1usize), (8, 2), (5, 1), (9, 2)] {
        let violations = denial_attack(s, t);
        let verdict = if violations.is_empty() {
            "safe"
        } else {
            "BROKEN"
        };
        println!(
            "  naive 2-round read @ S={s}, t={t} ({}4t): {verdict} {}",
            if s <= 4 * t { "≤ " } else { "> " },
            violations
                .first()
                .map(|v| format!("— {v}"))
                .unwrap_or_default()
        );
        assert_eq!(violations.is_empty(), s > 4 * t);
    }
    println!("\nexactly as the paper proves: 2-round reads die at S ≤ 4t.");
}
