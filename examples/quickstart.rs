//! Quickstart: deploy the paper's headline construction — a robust SWMR
//! atomic register with 2-round writes and 4-round reads over `3t + 1`
//! Byzantine-prone objects — and watch the round counts match the bounds.
//!
//! Run with: `cargo run --example quickstart`

use rastor::common::Value;
use rastor::core::{Protocol, StorageSystem, Workload};
use rastor::sim::FixedDelay;

fn main() {
    // t = 2 faults tolerated by S = 7 objects; 3 readers.
    let mut system = StorageSystem::new(Protocol::AtomicUnauth, 2, 3).expect("valid shape");
    println!(
        "deployed {} over {}",
        system.protocol().name(),
        system.config()
    );

    let workload = Workload::default()
        .with_write(0, Value::from_u64(1))
        .with_write(50, Value::from_u64(2))
        .with_read(200, 0)
        .with_read(300, 1)
        .with_read(400, 2);

    let result = system.run(Box::new(FixedDelay::new(1)), &workload, vec![]);

    println!("\noperations:");
    for c in &result.completions {
        println!(
            "  {} op{}: {:?} in {} (latency {})",
            c.client,
            c.op_seq,
            c.output,
            c.stat.rounds,
            c.stat.latency()
        );
    }

    let violations = result.history.check_atomic();
    println!("\nwrite rounds : {:?} (paper: 2)", result.write_rounds());
    println!("read rounds  : {:?} (paper: 4)", result.read_rounds());
    println!(
        "atomicity    : {}",
        if violations.is_empty() {
            "no violations".to_string()
        } else {
            format!("{violations:?}")
        }
    );
    assert!(violations.is_empty());
    assert!(result.write_rounds().iter().all(|&r| r == 2));
    assert!(result.read_rounds().iter().all(|&r| r == 4));
    println!("\nquickstart OK");
}
