//! The kv store over real TCP sockets, end to end in one process: two
//! shards of `3t + 1` storage objects behind loopback `ObjectServer`s, a
//! `ShardedKvStore` connected to them over the wire codec, pipelined
//! batches sharing round trips across the network, a server-side crash
//! inside the fault budget — and then the same traffic again through a
//! chaos proxy adding delay to every frame, with a partition cut and
//! healed live.
//!
//! Run with: `cargo run --example net_kv`

use rastor::common::{ObjectId, Value};
use rastor::kv::StoreConfig;
use rastor::net::{ChaosCfg, NetKv};
use std::time::{Duration, Instant};

fn main() {
    let (t, shards, handles) = (1, 2, 2u32);

    // --- Plain TCP: servers on loopback, no fault injection -------------
    let mut kv = NetKv::spawn(StoreConfig::new(t, shards, handles), None)
        .expect("valid fault budget and free loopback ports");
    for (s, server) in kv.servers.iter().enumerate() {
        println!(
            "shard {s}: {} objects behind tcp://{}",
            server.num_objects(),
            server.local_addr()
        );
    }

    let mut h = kv.store.handle(0).expect("handle in pool");
    h.set_depth(8);
    let items: Vec<(String, Value)> = (0..24u64)
        .map(|i| (format!("account:{i:02}"), Value::from_u64(1000 + i)))
        .collect();
    let start = Instant::now();
    let tags = h.put_batch(&items).expect("pipelined puts over tcp");
    println!(
        "{} pipelined puts over tcp in {:.2?} (tags minted by writer 0: {})",
        tags.len(),
        start.elapsed(),
        tags.iter().all(|tag| tag.writer == 0),
    );

    // Crash one object per shard — at the servers, where remote faults
    // live. Within each shard's budget, nothing observable changes.
    for server in &mut kv.servers {
        server.crash_object(ObjectId(3));
    }
    println!("crashed object s3 of every shard (budget t = {t} each)");
    let keys: Vec<String> = items.iter().map(|(k, _)| k.clone()).collect();
    let got = h.get_batch(&keys).expect("batch get after crashes");
    assert!(got.iter().all(|v| v.is_some()), "all keys survive");
    println!("all {} keys readable over tcp after the crashes", got.len());
    drop(h);

    // --- The same store shape through a netem chaos proxy ---------------
    let chaos = ChaosCfg::delay_only(Duration::from_micros(300)).with_seed(7);
    let kv = NetKv::spawn(StoreConfig::new(t, shards, handles), Some(chaos))
        .expect("chaos proxies on loopback");
    println!("chaos deployment: every frame of every connection pays ~300-600µs at the proxy");
    let mut h = kv.store.handle(0).expect("handle");
    h.set_depth(8);
    let start = Instant::now();
    h.put_batch(&items).expect("pipelined puts through chaos");
    println!(
        "{} pipelined puts through the chaos link in {:.2?} (coalescing amortizes the delay)",
        items.len(),
        start.elapsed()
    );

    // Cut the link to shard 0, watch an operation on it fail cleanly, heal
    // the partition, and watch service resume on the same connections.
    let victim = keys
        .iter()
        .find(|k| kv.store.shard_of(k) == 0)
        .expect("some key routes to shard 0");
    kv.proxies[0].set_partitioned(true);
    h.set_timeout(Duration::from_millis(200));
    let during = h.get(victim);
    kv.proxies[0].set_partitioned(false);
    h.set_timeout(Duration::from_secs(10));
    let after = h.get(victim).expect("post-heal get");
    println!(
        "partition drill on {victim}: during = {} / after heal = {:?}",
        if during.is_err() {
            "timed out (as it must)"
        } else {
            "served"
        },
        after.expect("key present").as_u64().expect("u64 value"),
    );
    println!("net kv OK: same registers, real sockets, hostile link survived");
}
