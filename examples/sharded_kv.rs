//! The sharded, pipelined throughput engine end to end: keys
//! consistent-hashed over four independent `3t + 1` clusters, four OS
//! threads hammering the store through the handle pool — first closed-loop,
//! then with depth-8 pipelined batches sharing round trips — one object
//! crashed in every shard, and the per-key register construction keeps
//! every answer atomic.
//!
//! Run with: `cargo run --example sharded_kv`

use rastor::common::{ObjectId, Value};
use rastor::kv::{ShardedKvStore, StoreConfig};
use std::time::{Duration, Instant};

fn main() {
    let (t, shards, handles) = (1, 4, 4u32);
    let store = ShardedKvStore::spawn(
        StoreConfig::new(t, shards, handles).with_jitter(Duration::from_micros(100)),
    )
    .expect("valid fault budget");
    println!(
        "sharded kv up: {} shards × {} ({} client handles, MWMR puts)",
        store.num_shards(),
        store.config(),
        store.num_handles()
    );

    // Four writer threads, each a distinct multi-writer of the same keys.
    let start = Instant::now();
    let mut threads = Vec::new();
    for hid in 0..handles {
        let store = store.clone();
        threads.push(std::thread::spawn(move || {
            let mut h = store.handle(hid).expect("handle in pool");
            for i in 0..25u64 {
                let key = format!("account:{:02}", i % 8);
                h.put(&key, Value::from_u64(u64::from(hid) * 1000 + i))
                    .expect("put");
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    let elapsed = start.elapsed();
    println!(
        "{} concurrent puts from {handles} threads in {elapsed:.2?} ({:.0} ops/sec)",
        25 * handles,
        f64::from(25 * handles) / elapsed.as_secs_f64()
    );

    // Shard placement is deterministic and spread out.
    for key in ["account:00", "account:03", "account:06"] {
        println!("  {key} lives on shard {}", store.shard_of(key));
    }

    // The same traffic pipelined: each thread keeps 8 puts in flight via
    // put_batch, so same-shard writes share round trips instead of paying
    // full latency one by one.
    let start = Instant::now();
    let mut threads = Vec::new();
    for hid in 0..handles {
        let store = store.clone();
        threads.push(std::thread::spawn(move || {
            let mut h = store.handle(hid).expect("handle in pool");
            h.set_depth(8);
            let items: Vec<(String, Value)> = (0..25u64)
                .map(|i| {
                    (
                        format!("ledger:{hid}:{i:02}"),
                        Value::from_u64(u64::from(hid) * 1000 + i),
                    )
                })
                .collect();
            let tags = h.put_batch(&items).expect("batch put");
            assert_eq!(tags.len(), items.len());
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    let piped = start.elapsed();
    println!(
        "{} pipelined puts (depth 8) from {handles} threads in {piped:.2?} ({:.0} ops/sec)",
        25 * handles,
        f64::from(25 * handles) / piped.as_secs_f64()
    );

    // Lose one object in every shard — within each budget, nothing changes.
    for s in 0..shards {
        store.crash_object(s, ObjectId(0));
    }
    println!("crashed object s0 of every shard (budget t = {t} each)");

    let mut h = store.handle(0).expect("handle");
    let keys: Vec<String> = (0..8u64).map(|i| format!("account:{i:02}")).collect();
    // One pipelined batch read across all shards, post-crash.
    for (key, got) in keys.iter().zip(h.get_batch(&keys).expect("batch get")) {
        // Every value is one of the writers' last puts for this slot; the
        // MWMR tags decided which one won.
        assert!(got.expect("key present").as_u64().is_some(), "{key}");
    }
    println!("all 8 keys still readable after the crashes: sharded kv OK");
}
