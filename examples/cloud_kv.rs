//! The paper's motivating scenario: a cloud key-value store whose backend
//! objects are outsourced and hence untrusted. Every `put` is a 4-round
//! multi-writer robust write (2-round tag collect + 2-round pre-write and
//! commit); every `get` a 4-round atomic read. The store keeps serving —
//! with unchanged results — after `t` backend objects crash.
//!
//! Runs over real OS threads (the thread runtime), not the simulator.
//! For the sharded, multi-threaded variant see `examples/sharded_kv.rs`.
//!
//! Run with: `cargo run --example cloud_kv`

use rastor::common::{ObjectId, Value};
use rastor::kv::KvStore;

fn main() {
    let t = 1;
    let mut store = KvStore::new(t, 2).expect("valid fault budget");
    println!(
        "cloud kv-store up: {} (each key = one MWMR register group, 4-round atomic gets)",
        store.config()
    );

    // A small user-profile workload.
    let profiles = [
        ("user:1/name", "alice"),
        ("user:1/plan", "pro"),
        ("user:2/name", "bob"),
        ("user:2/plan", "free"),
    ];
    for (k, v) in profiles {
        store
            .put(k, Value::from_bytes(v.as_bytes().to_vec()))
            .unwrap();
    }
    println!("wrote {} keys", store.num_keys());

    // Reads through two independent reader handles.
    for (k, expect) in profiles {
        let got = store.get(k, 0).unwrap().expect("key present");
        assert_eq!(got.as_bytes(), expect.as_bytes());
    }
    println!("reader 0 sees all writes");

    // Update a key, then lose a backend object — within the fault budget,
    // nothing changes for clients.
    store
        .put("user:2/plan", Value::from_bytes(*b"pro"))
        .unwrap();
    store.crash_object(ObjectId(3));
    println!("object s3 crashed (budget t = {t})");

    let plan = store.get("user:2/plan", 1).unwrap().unwrap();
    assert_eq!(plan.as_bytes(), b"pro");
    println!("reader 1 still reads the latest value: user:2/plan = \"pro\"");

    // New writes keep working too.
    store
        .put("user:3/name", Value::from_bytes(*b"carol"))
        .unwrap();
    assert_eq!(
        store.get("user:3/name", 0).unwrap().unwrap().as_bytes(),
        b"carol"
    );
    println!("writes after the crash succeed: cloud kv OK");
}
