//! A guided tour of the paper's two lower bounds, executed mechanically.
//!
//! 1. **Read lower bound (Proposition 1, Figure 1):** replay the full
//!    `(pr_g, ∆pr_g)` run family against a naive 2-round-read protocol at
//!    `S = 4t`, checking transcript indistinguishability pair by pair and
//!    locating the generation where atomicity necessarily breaks.
//! 2. **Write lower bound (Lemma 1 / Lemma 2, Figure 2):** print the block
//!    partition and superblock cardinalities for the paper's `k = 4`
//!    instance, replay the key `pr_1 ∼ prC_1` indistinguishability step,
//!    and tabulate the recurrence `t_k` with its closed form and the
//!    headline inversion `k = Ω(log t)`.
//!
//! Run with: `cargo run --example lower_bound_tour`

use rastor::lowerbound::diagram::{render_lemma1_layout, render_lemma1_superblocks, render_prop1};
use rastor::lowerbound::lemma1::execute_first_pair;
use rastor::lowerbound::prop1::{execute, Prop1Schedule};
use rastor::lowerbound::recurrence::{k_max, t_k, t_k_closed};
use rastor::lowerbound::{Lemma1Partition, Lemma1Schedule};

fn main() {
    println!("========== Proposition 1: no 2-round reads at S ≤ 4t ==========\n");
    let k = 2;
    let sched = Prop1Schedule::new(k, 4, 1);
    println!("run family for a {k}-round-write protocol, S = 4, t = 1:\n");
    for g in [1, 2, sched.generations()] {
        print!("{}", render_prop1(&sched.partition, &sched.pr(g)));
        print!("{}", render_prop1(&sched.partition, &sched.delta(g)));
        println!();
    }

    let report = execute(k, 4, 1);
    println!(
        "mechanical execution of all {} generations:",
        report.generations
    );
    for (g, pr_ret, delta_ret) in &report.returns {
        println!("  g={g}: rd returns {pr_ret} in pr{g}, {delta_ret} in ∆pr{g}");
    }
    println!(
        "every (pr, ∆pr) pair transcript-identical to its reader: {}",
        report.all_indistinguishable
    );
    let (g, violations) = report.first_violation.expect("the 2-round read must break");
    println!("atomicity breaks in legal run pr{g}: {}\n", violations[0]);

    println!("========== Lemma 1: 3-round reads force Ω(log t) write rounds ==========\n");
    let part = Lemma1Partition::new(4);
    print!("{}", render_lemma1_layout(&part));
    println!("\nsuperblock cardinalities (equations 1–3):");
    print!("{}", render_lemma1_superblocks(&part));

    let sched = Lemma1Schedule::new(4);
    sched.check_invariants().expect("paper invariants hold");
    println!(
        "\nall skip-sets and malicious budgets verified = t_k = {}",
        sched.tk()
    );

    for k in 2..=4 {
        let pair = execute_first_pair(k);
        println!(
            "k={k}: pr_1 ~ prC_1 indistinguishable: {} (rd_1 returned {:?} with write round {k} deleted)",
            pair.indistinguishable(),
            pair.returned_pr1.as_ref().map(|p| p.ts.0)
        );
        assert!(pair.indistinguishable());
    }

    println!("\nthe recurrence of Lemma 1 and its closed form (Lemma 2):");
    println!("  k   t_k(recurrence)  t_k(closed)  S=3t_k+1   k_max(t_k)");
    for k in 1..=10i64 {
        println!(
            "  {:<3} {:<16} {:<12} {:<10} {}",
            k,
            t_k(k),
            t_k_closed(k),
            3 * t_k(k) + 1,
            k_max(t_k(k))
        );
    }
    println!("\nreading in 3 rounds costs Ω(log t) write rounds — tour complete.");
}
