//! The multi-writer extension from the paper's conclusion: applying the
//! standard transformations once more yields MWMR atomic storage. Two
//! writers race; tags `(sequence, writer-id)` order all writes totally,
//! and readers always observe the tag-maximal value with no inversions.
//!
//! Run with: `cargo run --example multi_writer`

use rastor::common::{ClientId, ClusterConfig, OpKind, Value};
use rastor::core::clients::OpOutput;
use rastor::core::mwmr::{mw_read_client, MwWriteClient, Tag};
use rastor::core::HonestObject;
use rastor::sim::{Sim, SimConfig, UniformDelay};

fn main() {
    let cfg = ClusterConfig::byzantine(2).expect("valid shape"); // S = 7
    let (n_writers, n_readers) = (2u32, 2u32);
    let mut sim: Sim<_, _, OpOutput> =
        Sim::with_controller(SimConfig::default(), Box::new(UniformDelay::new(7, 1, 15)));
    for _ in 0..cfg.num_objects() {
        sim.add_object(Box::new(HonestObject::new()));
    }
    println!(
        "MWMR deployment over {}: {n_writers} writers, {n_readers} readers",
        cfg
    );

    // Interleaved writes by two writers (writer 1 modeled as a distinct
    // client process), plus interleaved reads.
    for round in 0..3u64 {
        sim.invoke_at(
            round * 400,
            ClientId::writer(),
            OpKind::Write,
            Box::new(MwWriteClient::new(
                cfg,
                0,
                n_writers,
                Value::from_u64(100 + round),
            )),
        );
        sim.invoke_at(
            round * 400 + 120,
            ClientId::reader(9), // stands in for writer 1
            OpKind::Write,
            Box::new(MwWriteClient::new(
                cfg,
                1,
                n_writers,
                Value::from_u64(200 + round),
            )),
        );
        sim.invoke_at(
            round * 400 + 250,
            ClientId::reader(0),
            OpKind::Read,
            Box::new(mw_read_client(cfg, 0, n_writers, n_readers)),
        );
    }
    sim.invoke_at(
        5_000,
        ClientId::reader(1),
        OpKind::Read,
        Box::new(mw_read_client(cfg, 1, n_writers, n_readers)),
    );

    let done = sim.run_to_quiescence();
    let mut last_read_tag = Tag::default();
    for c in &done {
        let tag = Tag::from_timestamp(c.output.pair().ts);
        match &c.output {
            OpOutput::Wrote(p) => println!(
                "  {} wrote  {:?} as tag (seq {}, w{}) in {}",
                c.client, p.val, tag.seq, tag.writer, c.stat.rounds
            ),
            OpOutput::Read(p) => {
                println!(
                    "  {} read   {:?} tag (seq {}, w{}) in {}",
                    c.client, p.val, tag.seq, tag.writer, c.stat.rounds
                );
                assert!(tag >= last_read_tag, "reads never go backwards");
                last_read_tag = tag;
            }
        }
    }

    // Final read dominates every write.
    let max_write = done
        .iter()
        .filter(|c| !c.output.is_read())
        .map(|c| Tag::from_timestamp(c.output.pair().ts))
        .max()
        .unwrap();
    assert_eq!(
        last_read_tag, max_write,
        "final read sees the dominant write"
    );
    println!("\nall writes totally ordered by tag; reads monotone — MWMR OK");
}
